//! Wire protocol: length-prefixed frames over TCP, in two negotiated
//! payload formats.
//!
//! Every message is a 4-byte big-endian length followed by that many
//! payload bytes. A connection's *first* frame negotiates what the
//! payloads are (`net::decoder`): a payload opening with the `GPSQ` magic
//! makes it a binary session (`crate::wire` — the hot-path format: no
//! text encode/decode, rankings as varint-delta ports + raw f64 bits);
//! anything else is a JSON session, the original protocol described
//! here. The choice is sticky per connection; both formats answer every
//! command identically (asserted by the wire-format × transport parity
//! e2e matrix). JSON requests are objects with a `cmd` field:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"predict","ip":"10.1.2.3","open":[80,443],"asn":7,"top":8}
//! {"cmd":"predict","ip":"10.1.2.3","model":"lzr-day3"}  — pick a model id
//! {"cmd":"batch","queries":[{"ip":...}, ...],"model":"quick"}
//! {"cmd":"stats"}                        — includes per-model breakdown
//! {"cmd":"manifest"}                     — optional "model" id too
//! {"cmd":"reload"}                       — re-read the served snapshot file
//! {"cmd":"reload","model":"/path.gpsb"}  — switch to a different snapshot
//! {"cmd":"reload","name":"quick"}        — reload a specific model id
//! {"cmd":"load","name":"b","model":"/b.gpsb"}  — register a new model
//! {"cmd":"unload","name":"b"}            — drop a model (not the default)
//! {"cmd":"list-models"}                  — every model id + its counters
//! {"cmd":"shutdown"}                     — drain: stop accepting, finish
//!                                          in-flight work, flush the query
//!                                          log, close connections
//! ```
//!
//! The server holds a *registry* of models keyed by id (`server.rs`); a
//! frame without `"model"`/`"name"` routes to the default model, so
//! pre-registry clients work unchanged. On query/batch/manifest frames
//! `"model"` is a model *id*; on `reload`/`load` frames `"model"` remains
//! the snapshot *path* it always was, and `"name"` carries the id.
//!
//! Successful responses carry `"ok":true` plus the payload; failures carry
//! `"ok":false` and an `"error"` string (a malformed request never kills
//! the connection; an unknown model id is an error reply like any other).
//! A request may carry an `"id"` (any JSON value); the response — success
//! *or* error — echoes it verbatim, so pipelining clients can correlate
//! failures with the request that caused them.
//!
//! `reload` swaps a served model with zero downtime (see the epoch slots
//! in `server.rs`); like `stats`, the admin commands are trusted-operator
//! surface — anyone who can reach the port can point the server at a
//! different snapshot *file path*, so bind to loopback or put an
//! authenticating proxy in front. The server is std-only and speaks this
//! protocol over either of two transports (`crate::transport`): the
//! thread-per-connection loop in this module — simplest, lowest latency
//! at moderate fan-in — and the event-driven loop in `crate::net`, which
//! multiplexes tens of thousands of mostly-idle connections over a few
//! threads. Request handling is shared (`classify` + the response
//! builders), so the transports answer identically.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::artifact::{Query, Ranked};
use crate::hist::{EndpointLabel, WireLabel};
use crate::net::http;
use crate::net::{FrameDecoder, WireFormat};
use crate::server::{unix_now_millis, CacheLayer, ModelEntry, PredictionServer};
use crate::transport::TransportConfig;
use crate::wire;
use gps_types::binary::ByteWriter;
use gps_types::json::Json;
use gps_types::{Ip, JsonCodec, Port, QueryLogRecord};

/// Frames above this many bytes are rejected (a length prefix is attacker
/// input; without a cap a single frame could balloon memory).
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Largest batch a single `batch` request may carry.
pub const MAX_BATCH_QUERIES: usize = 65_536;

/// Most open-port evidence entries a single query may carry. Evidence
/// becomes part of per-shard LRU cache keys, so unbounded lists from the
/// wire would let one client pin gigabytes of key data in the caches.
pub const MAX_OPEN_PORTS: usize = 64;

/// Largest `top` a query may request over the wire (bounds response size).
pub const MAX_TOP: usize = 65_536;

/// Write one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let mut text = String::new();
    json.write(&mut text);
    let len = u32::try_from(text.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_BYTES)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF before a length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    match read_frame_text(r)? {
        None => Ok(None),
        Some(text) => Json::parse(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Read one frame's payload text; `Ok(None)` on clean EOF before a length
/// prefix. Errors here are *framing* errors (truncation, size cap,
/// non-UTF-8): the stream position can no longer be trusted, so the
/// connection must close. Whether the text parses is the caller's concern
/// — the server replies to well-framed garbage instead of disconnecting.
pub fn read_frame_text(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut decoder = FrameDecoder::new(MAX_FRAME_BYTES);
    match read_frame_payload(r, &mut decoder)? {
        None => Ok(None),
        // The fresh decoder negotiated from this very frame; a GPSQ
        // payload negotiates Binary and is refused here (the caller asked
        // for text).
        Some(payload) => match decoder.format() {
            Some(WireFormat::Json) | None => {
                Ok(Some(String::from_utf8(payload).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "frame is not utf-8")
                })?))
            }
            Some(WireFormat::Binary) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected a JSON frame, got GPSQ",
            )),
        },
    }
}

/// Read one frame's payload bytes through a *persistent* per-connection
/// decoder (which carries the negotiated wire format across frames);
/// `Ok(None)` on clean EOF before a length prefix. Errors here are
/// *framing* errors (truncation, size cap, non-UTF-8 in a JSON session, a
/// format flip mid-session): the stream position can no longer be
/// trusted, so the connection must close. Whether the payload parses is
/// the caller's concern — the server replies to well-framed garbage
/// instead of disconnecting.
pub(crate) fn read_frame_payload(
    r: &mut impl Read,
    decoder: &mut FrameDecoder,
) -> io::Result<Option<Vec<u8>>> {
    // Driven with exact-sized reads (`need()`), so a length prefix or body
    // torn across arbitrarily small TCP segments reassembles correctly
    // and no byte of the *next* frame is ever consumed. Only EOF before
    // the first length byte is a clean close; EOF midway through a frame
    // is truncation from a dead peer. Exact-sized reads also mean a feed
    // completes at most one frame, so nothing is ever buffered between
    // calls except inside the decoder itself.
    let mut frames = Vec::with_capacity(1);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let want = decoder.need().min(chunk.len());
        let n = match r.read(&mut chunk[..want]) {
            Ok(0) => {
                return if decoder.at_boundary() {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        decoder
            .feed(&chunk[..n], &mut frames)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if let Some(payload) = frames.pop() {
            return Ok(Some(payload));
        }
    }
}

/// Encode a query for the wire.
pub fn query_to_json(query: &Query) -> Json {
    let mut json = Json::obj();
    json.set("ip", query.ip.to_json());
    if !query.open.is_empty() {
        json.set(
            "open",
            query.open.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
        );
    }
    if let Some(asn) = query.asn {
        json.set("asn", asn);
    }
    if query.top > 0 {
        json.set("top", query.top);
    }
    json
}

/// Decode a query from the wire.
pub fn query_from_json(json: &Json) -> Result<Query, String> {
    let ip =
        Ip::from_json(json.req("ip").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let mut query = Query::new(ip);
    if let Some(open) = json.get("open") {
        let open = open.as_arr().ok_or("open must be an array")?;
        if open.len() > MAX_OPEN_PORTS {
            return Err(format!("open lists at most {MAX_OPEN_PORTS} ports"));
        }
        for port in open {
            query
                .open
                .push(Port::from_json(port).map_err(|e| e.to_string())?);
        }
    }
    if let Some(asn) = json.get("asn") {
        query.asn = Some(
            asn.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or("bad asn")?,
        );
    }
    if let Some(top) = json.get("top") {
        let top = top.as_u64().ok_or("bad top")? as usize;
        if top > MAX_TOP {
            return Err(format!("top is capped at {MAX_TOP}"));
        }
        query.top = top;
    }
    Ok(query)
}

/// `[[port, prob], ...]`.
pub fn ranked_to_json(ranked: &Ranked) -> Json {
    Json::Arr(
        ranked
            .iter()
            .map(|&(port, prob)| Json::Arr(vec![port.to_json(), Json::Num(prob)]))
            .collect(),
    )
}

/// Inverse of [`ranked_to_json`].
pub fn ranked_from_json(json: &Json) -> Result<Ranked, String> {
    json.as_arr()
        .ok_or("predictions must be an array")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("bad prediction pair")?;
            let port = Port::from_json(&pair[0]).map_err(|e| e.to_string())?;
            let prob = pair[1].as_f64().ok_or("bad probability")?;
            Ok((port, prob))
        })
        .collect()
}

pub(crate) fn ok_response() -> Json {
    let mut json = Json::obj();
    json.set("ok", true);
    json
}

pub(crate) fn error_response(message: impl Into<String>) -> Json {
    let mut json = Json::obj();
    json.set("ok", false).set("error", message.into());
    json
}

/// Patch the length prefix reserved at `start` once the payload is in
/// place; `false` (with the frame rolled back) if the payload outgrew the
/// cap.
fn finish_frame(out: &mut Vec<u8>, start: usize) -> bool {
    let len = out.len() - start - 4;
    match u32::try_from(len).ok().filter(|&n| n <= MAX_FRAME_BYTES) {
        Some(len) => {
            out[start..start + 4].copy_from_slice(&len.to_be_bytes());
            true
        }
        None => {
            out.truncate(start);
            false
        }
    }
}

/// Append one length-prefixed JSON frame to `out`; `false` if it
/// exceeded the cap (the buffer is rolled back).
fn append_json_frame(out: &mut Vec<u8>, json: &Json) -> bool {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    let mut text = String::new();
    json.write(&mut text);
    out.extend_from_slice(text.as_bytes());
    finish_frame(out, start)
}

/// Append one length-prefixed GPSQ frame, encoding the payload *directly
/// into `out`* through a [`ByteWriter`] wrapping it (no intermediate
/// buffer — this is the zero-copy half of the binary wire path); `false`
/// if it exceeded the cap (rolled back).
pub(crate) fn append_binary_frame(out: &mut Vec<u8>, encode: impl FnOnce(&mut ByteWriter)) -> bool {
    let start = out.len();
    let mut writer = ByteWriter::from_vec(std::mem::take(out));
    writer.put_bytes(&[0u8; 4]);
    encode(&mut writer);
    *out = writer.into_bytes();
    finish_frame(out, start)
}

/// The standard substitute when a legal request produced a response past
/// the frame cap (a huge batch against a rule-rich model can):
pub(crate) const OVERSIZE_REPLY: &str = "response exceeds frame size cap";

/// How the reply to one classified request frame must be encoded — the
/// per-request state a transport carries from classification to reply
/// serialization (for predict work, across the shard round trip).
pub(crate) enum ReplyCtx {
    /// A JSON-session frame: set the echoed id, serialize as JSON text.
    Json { id: Option<Json> },
    /// A native GPSQ frame: varint id, binary response body.
    Binary { id: Option<u64> },
    /// A GPSQ admin envelope: JSON semantics (id included) inside a
    /// binary frame.
    BinaryAdmin { id: Option<Json> },
    /// An HTTP request: the body is the *same* JSON text a JSON-wire
    /// reply carries (parity by construction), wrapped in an HTTP/1.1
    /// response head — 200 on `"ok":true`, 400 otherwise.
    Http { id: Option<Json>, keep_alive: bool },
}

/// A finished (no shard work) reply, ready to serialize.
pub(crate) enum ReadyReply {
    /// JSON response on a JSON session.
    Json { response: Json, id: Option<Json> },
    /// GPSQ pong.
    Pong { id: Option<u64> },
    /// GPSQ native error.
    BinaryError { id: Option<u64>, message: String },
    /// JSON response riding in a GPSQ admin envelope.
    BinaryAdmin { response: Json, id: Option<Json> },
    /// JSON response riding in an HTTP/1.1 response.
    Http {
        response: Json,
        id: Option<Json>,
        keep_alive: bool,
    },
}

/// What one request frame classified into: a finished reply, or predict
/// work plus the context to encode its eventual answer.
pub(crate) enum FrameAction {
    Ready(ReadyReply),
    Predict {
        entry: Arc<ModelEntry>,
        queries: Vec<Query>,
        /// `batch` frames answer with the batch shape, singles with the
        /// single shape — in either format.
        batch: bool,
        ctx: ReplyCtx,
    },
}

/// An error reply shaped for the reply context.
pub(crate) fn ready_error(ctx: ReplyCtx, message: String) -> ReadyReply {
    match ctx {
        ReplyCtx::Json { id } => ReadyReply::Json {
            response: error_response(message),
            id,
        },
        ReplyCtx::Binary { id } => ReadyReply::BinaryError { id, message },
        ReplyCtx::BinaryAdmin { id } => ReadyReply::BinaryAdmin {
            response: error_response(message),
            id,
        },
        ReplyCtx::Http { id, keep_alive } => ReadyReply::Http {
            response: error_response(message),
            id,
            keep_alive,
        },
    }
}

/// Serialize a finished reply as one frame appended to `out`, falling
/// back to the standard over-cap error reply (id included, same format)
/// if it outgrew the frame cap.
pub(crate) fn encode_ready(reply: ReadyReply, out: &mut Vec<u8>) {
    match reply {
        ReadyReply::Json { mut response, id } => {
            if let Some(id) = &id {
                response.set("id", id.clone());
            }
            if !append_json_frame(out, &response) {
                let mut oversized = error_response(OVERSIZE_REPLY);
                if let Some(id) = &id {
                    oversized.set("id", id.clone());
                }
                assert!(
                    append_json_frame(out, &oversized),
                    "error frame fits the cap"
                );
            }
        }
        ReadyReply::Pong { id } => {
            assert!(
                append_binary_frame(out, |w| wire::encode_pong(id, w)),
                "pong fits the cap"
            );
        }
        ReadyReply::BinaryError { id, message } => {
            if !append_binary_frame(out, |w| wire::encode_error(id, &message, w)) {
                assert!(
                    append_binary_frame(out, |w| wire::encode_error(id, OVERSIZE_REPLY, w)),
                    "error frame fits the cap"
                );
            }
        }
        ReadyReply::BinaryAdmin { mut response, id } => {
            if let Some(id) = &id {
                response.set("id", id.clone());
            }
            let mut text = String::new();
            response.write(&mut text);
            if !append_binary_frame(out, |w| wire::encode_admin_response(&text, w)) {
                let mut oversized = error_response(OVERSIZE_REPLY);
                if let Some(id) = &id {
                    oversized.set("id", id.clone());
                }
                let mut text = String::new();
                oversized.write(&mut text);
                assert!(
                    append_binary_frame(out, |w| wire::encode_admin_response(&text, w)),
                    "error frame fits the cap"
                );
            }
        }
        ReadyReply::Http {
            mut response,
            id,
            keep_alive,
        } => {
            if let Some(id) = &id {
                response.set("id", id.clone());
            }
            // The body is exactly the JSON-wire reply text; the only
            // HTTP-ism is the status code mirroring the `ok` flag.
            let status = match response.get("ok").and_then(Json::as_bool) {
                Some(true) => 200,
                _ => 400,
            };
            let mut text = String::new();
            response.write(&mut text);
            text.push('\n');
            http::append_response(out, status, "application/json", text.as_bytes(), keep_alive);
        }
    }
}

/// Serialize the success reply for completed predict work as one frame
/// appended to `out` (both shapes, both formats), with the over-cap
/// fallback. On a binary session the ranking bytes are encoded straight
/// into `out` — no intermediate `String` or `Vec` per frame.
pub(crate) fn encode_predict_reply(
    ctx: &ReplyCtx,
    answers: &[Arc<Ranked>],
    batch: bool,
    out: &mut Vec<u8>,
) {
    match ctx {
        ReplyCtx::Json { id } => encode_ready(
            ReadyReply::Json {
                response: predict_response(answers, batch),
                id: id.clone(),
            },
            out,
        ),
        ReplyCtx::Binary { id } => {
            if !append_binary_frame(out, |w| {
                wire::encode_predict_response(*id, answers, batch, w)
            }) {
                assert!(
                    append_binary_frame(out, |w| wire::encode_error(*id, OVERSIZE_REPLY, w)),
                    "error frame fits the cap"
                );
            }
        }
        ReplyCtx::BinaryAdmin { id } => encode_ready(
            ReadyReply::BinaryAdmin {
                response: predict_response(answers, batch),
                id: id.clone(),
            },
            out,
        ),
        ReplyCtx::Http { id, keep_alive } => encode_ready(
            ReadyReply::Http {
                response: predict_response(answers, batch),
                id: id.clone(),
                keep_alive: *keep_alive,
            },
            out,
        ),
    }
}

/// An optional string field that, when present, must actually be a
/// string (`Ok(None)` when absent).
fn optional_str<'a>(request: &'a Json, field: &str) -> Result<Option<&'a str>, String> {
    match request.get(field) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.as_str())),
        Some(_) => Err(format!("{field} must be a string")),
    }
}

/// How one request frame is to be answered. `classify` is the request
/// core both transports share: every command except the predicts is
/// fully computed here; the predicts come back as *work* (the resolved
/// model entry plus parsed queries), because the blocking transport
/// executes them in place while the event transport pipelines them into
/// the shard workers and answers when completions return. Running the
/// same classification and the same response builders is what makes the
/// two transports answer byte-identically — asserted by the
/// transport-parity e2e suite.
pub(crate) enum Action {
    /// The response, finished.
    Ready(Json),
    /// Shard work: answer with [`predict_response`] once every query in
    /// `queries` has its answer.
    Predict {
        entry: Arc<ModelEntry>,
        queries: Vec<Query>,
        /// `batch` frames answer with `"results"`, singles with
        /// `"predictions"`.
        batch: bool,
    },
}

/// Build the success reply for completed predict work (both shapes).
pub(crate) fn predict_response(answers: &[Arc<Ranked>], batch: bool) -> Json {
    let mut json = ok_response();
    if batch {
        json.set(
            "results",
            answers
                .iter()
                .map(|r| ranked_to_json(r))
                .collect::<Vec<_>>(),
        );
    } else {
        json.set("predictions", ranked_to_json(&answers[0]));
    }
    json
}

/// Classify one request frame into a finished response or predict work.
pub(crate) fn classify(server: &PredictionServer, request: &Json) -> Action {
    let ready = Action::Ready;
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(cmd) => cmd,
        None => return ready(error_response("missing cmd")),
    };
    // On query-shaped frames `"model"` is a registry id; absence means
    // the default model (the pre-registry wire behavior, unchanged).
    let model_id = match optional_str(request, "model") {
        Ok(id) => id,
        Err(e) => return ready(error_response(e)),
    };
    // Resolve the serving entry for the predict commands up front so the
    // unknown-model error is identical on both shapes.
    let resolve = |id: Option<&str>| -> Result<Arc<ModelEntry>, String> {
        match id {
            None => Ok(server.default_entry().clone()),
            Some(id) => server.entry(id),
        }
    };
    match cmd {
        "ping" => {
            let mut json = ok_response();
            json.set("pong", true);
            ready(json)
        }
        "predict" => match query_from_json(request) {
            Ok(query) => match resolve(model_id) {
                Ok(entry) => Action::Predict {
                    entry,
                    queries: vec![query],
                    batch: false,
                },
                Err(e) => ready(error_response(e)),
            },
            Err(e) => ready(error_response(e)),
        },
        "batch" => {
            let queries = match request.get("queries").and_then(Json::as_arr) {
                Some(items) if items.len() <= MAX_BATCH_QUERIES => items,
                Some(_) => return ready(error_response("batch too large")),
                None => return ready(error_response("missing queries")),
            };
            let mut parsed = Vec::with_capacity(queries.len());
            for q in queries {
                match query_from_json(q) {
                    Ok(query) => parsed.push(query),
                    Err(e) => return ready(error_response(e)),
                }
            }
            match resolve(model_id) {
                Ok(entry) => Action::Predict {
                    entry,
                    queries: parsed,
                    batch: true,
                },
                Err(e) => ready(error_response(e)),
            }
        }
        "stats" => {
            let mut json = ok_response();
            json.set("stats", server.stats().to_json());
            ready(json)
        }
        "reset-stats" => {
            // Zero traffic counters and histograms (global and per model);
            // generations, registry membership, connection gauges, and
            // uptime are untouched. Lets a bench reuse one server across
            // phases without the first phase polluting the second's
            // numbers.
            server.reset_stats();
            ready(ok_response())
        }
        "manifest" => {
            let (model, generation) = match model_id {
                None => (server.model(), server.generation()),
                Some(id) => match (server.model_of(id), server.generation_of(id)) {
                    (Ok(model), Ok(generation)) => (model, generation),
                    (Err(e), _) | (_, Err(e)) => return ready(error_response(e)),
                },
            };
            let m = model.manifest();
            let mut inner = Json::obj();
            inner
                .set("dataset", m.dataset_name.as_str())
                .set(
                    "universe_seed",
                    gps_types::json::u64_to_hex(m.universe_seed),
                )
                .set("step_prefix", m.step_prefix)
                .set("distinct_keys", m.distinct_keys)
                .set("num_rules", m.num_rules)
                .set("num_priors", m.num_priors)
                .set("checksum", gps_types::json::u64_to_hex(m.checksum));
            let mut json = ok_response();
            json.set("manifest", inner)
                .set("generation", Json::Num(generation as f64));
            ready(json)
        }
        "reload" => {
            // Here `"model"` keeps its pre-registry meaning — a snapshot
            // *path* — and the registry id rides in `"name"`.
            let path = model_id.map(std::path::PathBuf::from);
            let name = match optional_str(request, "name") {
                Ok(name) => name,
                Err(e) => return ready(error_response(e)),
            };
            let result = match name {
                None => server.reload_from_disk(path.as_deref()),
                Some(id) => server.reload_model_from_disk(id, path.as_deref()),
            };
            match result {
                // Describe the model *this* reload published — reading
                // the slot again here could race with a concurrent
                // reload and misattribute the manifest.
                Ok((generation, model)) => {
                    let m = model.manifest();
                    let mut json = ok_response();
                    json.set("generation", Json::Num(generation as f64))
                        .set("num_rules", m.num_rules)
                        .set("num_priors", m.num_priors)
                        .set("checksum", gps_types::json::u64_to_hex(m.checksum));
                    if let Some(name) = name {
                        json.set("name", name);
                    }
                    ready(json)
                }
                // The old model is still serving; the error only reports
                // why the swap did not happen.
                Err(e) => ready(error_response(format!("reload failed: {e}"))),
            }
        }
        "load" => {
            let name = match optional_str(request, "name") {
                Ok(Some(name)) => name,
                Ok(None) => return ready(error_response("load requires a name")),
                Err(e) => return ready(error_response(e)),
            };
            let path = match model_id {
                Some(path) => std::path::PathBuf::from(path),
                None => return ready(error_response("load requires a model snapshot path")),
            };
            match server.load_model_from_disk(name, &path) {
                Ok(model) => {
                    let m = model.manifest();
                    let mut json = ok_response();
                    json.set("name", name)
                        .set("num_rules", m.num_rules)
                        .set("num_priors", m.num_priors)
                        .set("checksum", gps_types::json::u64_to_hex(m.checksum));
                    ready(json)
                }
                Err(e) => ready(error_response(format!("load failed: {e}"))),
            }
        }
        "unload" => {
            let name = match optional_str(request, "name") {
                Ok(Some(name)) => name,
                Ok(None) => return ready(error_response("unload requires a name")),
                Err(e) => return ready(error_response(e)),
            };
            match server.unload_model(name) {
                Ok(()) => {
                    let mut json = ok_response();
                    json.set("name", name);
                    ready(json)
                }
                Err(e) => ready(error_response(format!("unload failed: {e}"))),
            }
        }
        "shutdown" => {
            // Enter drain: the accept gates stop admitting, the query
            // log is flushed, and the transports close connections once
            // their in-flight replies finish. The reply itself still
            // goes out on this connection — drain never cuts off an
            // answer already owed.
            server.begin_drain();
            let mut json = ok_response();
            json.set("draining", true);
            ready(json)
        }
        "list-models" => {
            let stats = server.stats();
            let mut json = ok_response();
            json.set(
                "models",
                stats
                    .models
                    .iter()
                    .map(|m| {
                        let mut entry = m.to_json();
                        entry.set("name", m.id.as_str());
                        entry
                    })
                    .collect::<Vec<_>>(),
            );
            ready(json)
        }
        other => ready(error_response(format!("unknown cmd {other:?}"))),
    }
}

/// Classify one raw frame payload — either wire format — into a finished
/// reply or predict work plus its reply context. This is the one entry
/// point both transports feed every inbound frame through, which is what
/// makes threads/events and json/binary answer identically.
pub(crate) fn classify_payload(
    server: &PredictionServer,
    format: WireFormat,
    payload: &[u8],
) -> FrameAction {
    match format {
        WireFormat::Json => match std::str::from_utf8(payload) {
            // The decoder already enforced UTF-8 for JSON sessions; this
            // arm only guards direct callers.
            Err(_) => FrameAction::Ready(ReadyReply::Json {
                response: error_response("bad json: frame is not utf-8"),
                id: None,
            }),
            Ok(text) => classify_json(server, text, ReplyShape::Json),
        },
        WireFormat::Binary => match wire::decode_request(payload) {
            Err(e) => FrameAction::Ready(ReadyReply::BinaryError {
                id: e.id,
                message: e.message,
            }),
            Ok(wire::Request::Ping { id }) => FrameAction::Ready(ReadyReply::Pong { id }),
            Ok(wire::Request::Predict { id, model, query }) => predict_action(
                server,
                model.as_deref(),
                vec![query],
                false,
                ReplyCtx::Binary { id },
            ),
            Ok(wire::Request::Batch { id, model, queries }) => predict_action(
                server,
                model.as_deref(),
                queries,
                true,
                ReplyCtx::Binary { id },
            ),
            // Admin passthrough: JSON semantics, binary envelope. The
            // embedded text runs through the very same JSON core.
            Ok(wire::Request::Admin { json }) => {
                classify_json(server, &json, ReplyShape::BinaryAdmin)
            }
        },
    }
}

/// Which envelope a JSON-semantics reply must ride: a bare JSON frame, a
/// GPSQ admin envelope, or an HTTP/1.1 response.
#[derive(Clone, Copy)]
pub(crate) enum ReplyShape {
    Json,
    BinaryAdmin,
    Http { keep_alive: bool },
}

/// The JSON half of [`classify_payload`]: parse, pull the echoed id, run
/// the shared [`classify`] core. `shape` says which envelope the JSON
/// arrived in — GPSQ admin frame, HTTP body — so the reply rides the
/// same one.
pub(crate) fn classify_json(
    server: &PredictionServer,
    text: &str,
    shape: ReplyShape,
) -> FrameAction {
    // The request id (if any) is echoed on every reply, error replies
    // included — a pipelining client must be able to tell *which* request
    // of a burst failed. Unparseable JSON has no extractable id, so only
    // framing-level garbage goes un-correlated.
    let (response, id) = match Json::parse(text) {
        Err(e) => (error_response(format!("bad json: {e}")), None),
        Ok(request) => {
            let id = request.get("id").cloned();
            match classify(server, &request) {
                Action::Ready(json) => (json, id),
                Action::Predict {
                    entry,
                    queries,
                    batch,
                } => {
                    let ctx = match shape {
                        ReplyShape::Json => ReplyCtx::Json { id },
                        ReplyShape::BinaryAdmin => ReplyCtx::BinaryAdmin { id },
                        ReplyShape::Http { keep_alive } => ReplyCtx::Http { id, keep_alive },
                    };
                    return FrameAction::Predict {
                        entry,
                        queries,
                        batch,
                        ctx,
                    };
                }
            }
        }
    };
    FrameAction::Ready(match shape {
        ReplyShape::Json => ReadyReply::Json { response, id },
        ReplyShape::BinaryAdmin => ReadyReply::BinaryAdmin { response, id },
        ReplyShape::Http { keep_alive } => ReadyReply::Http {
            response,
            id,
            keep_alive,
        },
    })
}

/// Resolve the model entry for native-binary predict work; an unknown id
/// is an error reply like any other (same message as the JSON path).
fn predict_action(
    server: &PredictionServer,
    model: Option<&str>,
    queries: Vec<Query>,
    batch: bool,
    ctx: ReplyCtx,
) -> FrameAction {
    let entry = match model {
        None => Ok(server.default_entry().clone()),
        Some(id) => server.entry(id),
    };
    match entry {
        Ok(entry) => FrameAction::Predict {
            entry,
            queries,
            batch,
            ctx,
        },
        Err(e) => FrameAction::Ready(ready_error(ctx, e)),
    }
}

/// Per-request observability shared by both transports: record the
/// request latency into the server-level and per-model histogram cells —
/// a batch frame of `n` queries counts `n` samples, keeping histogram
/// counts summable against `requests` — and, when a query log is
/// configured, append one structured record carrying the first query's
/// key fields (what warm replay needs back).
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_predict(
    server: &PredictionServer,
    entry: &ModelEntry,
    wire: WireLabel,
    batch: bool,
    n: u64,
    first: Option<&Query>,
    layer: CacheLayer,
    started: Instant,
) {
    let latency_ns = started.elapsed().as_nanos() as u64;
    let endpoint = if batch {
        EndpointLabel::Batch
    } else {
        EndpointLabel::Single
    };
    // Per-model only: the server-level predict cells are derived at
    // snapshot time by summing the models, so the hot path pays for one
    // histogram update, not two.
    entry
        .counters
        .hists
        .cell(wire, endpoint)
        .record_n(latency_ns, n);
    if let (Some(log), Some(first)) = (server.query_log(), first) {
        log.push(QueryLogRecord {
            ts_ms: unix_now_millis(),
            model: entry.id.clone(),
            wire: wire.as_str().to_string(),
            endpoint: endpoint.as_str().to_string(),
            ip: first.ip,
            open: first.open.iter().map(|p| p.0).collect(),
            asn: first.asn,
            top: first.top,
            cache: layer.as_str().to_string(),
            latency_ns,
            generation: entry.generation(),
        });
    }
}

/// Record one admin-shaped request (anything that never reaches the
/// shards) into the server-level histogram matrix.
pub(crate) fn record_admin(server: &PredictionServer, wire: WireLabel, started: Instant) {
    server
        .server_stats()
        .hists
        .cell(wire, EndpointLabel::Admin)
        .record(started.elapsed().as_nanos() as u64);
}

/// Serve one accepted connection until EOF or a framing error. A frame
/// that is well-framed but semantically garbage gets an error *response*
/// — only breakage that desynchronizes the stream (or flips wire format
/// mid-session) closes the connection. One frame decoder and one
/// response buffer live for the whole connection: the decoder carries
/// the negotiated wire format, and every reply — JSON or GPSQ — encodes
/// into the same reused buffer instead of allocating per frame.
pub fn serve_connection(server: &PredictionServer, stream: TcpStream) -> io::Result<()> {
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut decoder = FrameDecoder::new(MAX_FRAME_BYTES);
    let mut response_buf: Vec<u8> = Vec::new();
    /// Responses coalesce in the reused buffer past this only while more
    /// pipelined requests are already buffered; then they flush in one
    /// write.
    const WRITE_COALESCE_CAP: usize = 64 * 1024;
    loop {
        let payload = match read_frame_payload(&mut reader, &mut decoder) {
            Ok(Some(payload)) => payload,
            // EOF or framing death: everything answered so far still
            // goes out (a pipelined peer's valid frames are answered
            // even when a later frame kills the connection).
            result => {
                if !response_buf.is_empty() {
                    let _ = writer.write_all(&response_buf);
                }
                return result.map(|_| ());
            }
        };
        let started = Instant::now();
        let format = decoder.format().unwrap_or(WireFormat::Json);
        let wire = match format {
            WireFormat::Json => WireLabel::Json,
            WireFormat::Binary => WireLabel::Gpsq,
        };
        match classify_payload(server, format, &payload) {
            FrameAction::Ready(reply) => {
                encode_ready(reply, &mut response_buf);
                record_admin(server, wire, started);
            }
            FrameAction::Predict {
                entry,
                queries,
                batch,
                ctx,
            } => {
                // Predict work executes in place — the blocking
                // transport's path through the shared core. Cache-layer
                // tracing costs an Arc bump per request, so it runs only
                // when a query log wants the attribution.
                let n = queries.len() as u64;
                let trace = server.query_log().is_some();
                let first = if trace {
                    queries.first().cloned()
                } else {
                    None
                };
                let layer = if batch {
                    let (answers, layer) =
                        server.predict_batch_entry_traced(entry.clone(), queries, trace);
                    encode_predict_reply(&ctx, &answers, true, &mut response_buf);
                    layer
                } else {
                    let query = queries.into_iter().next().expect("one query");
                    let (answer, layer) = server.predict_entry_traced(entry.clone(), query, trace);
                    encode_predict_reply(&ctx, &[answer], false, &mut response_buf);
                    layer
                };
                record_predict(
                    server,
                    &entry,
                    wire,
                    batch,
                    n,
                    first.as_ref(),
                    layer,
                    started,
                );
            }
        }
        // Write coalescing: while the read buffer already holds more of
        // a pipelined burst, keep encoding into the same buffer and send
        // the whole run of responses in one syscall once the burst (or
        // the cap) is reached. A request/response peer sees every reply
        // before this connection blocks on the next read, so the closed
        // loop is never delayed.
        if reader.buffer().is_empty() || response_buf.len() >= WRITE_COALESCE_CAP {
            writer.write_all(&response_buf)?;
            response_buf.clear();
        }
        // Draining: every reply owed so far went out (including the
        // `shutdown` ack itself); close instead of reading more work.
        if server.is_draining() && reader.buffer().is_empty() {
            if !response_buf.is_empty() {
                writer.write_all(&response_buf)?;
            }
            return Ok(());
        }
    }
}

/// Accept loop: one thread per connection. Blocks forever; run it on a
/// dedicated thread if the caller needs to keep working. Equivalent to
/// [`crate::transport::serve`] with a default (threads-transport)
/// [`TransportConfig`].
pub fn serve_tcp(server: Arc<PredictionServer>, listener: TcpListener) -> io::Result<()> {
    serve_blocking(server, listener, &TransportConfig::default())
}

/// The thread-per-connection transport with its knobs: `max_conns` caps
/// live connections (excess accepts are dropped on the floor, counted in
/// `conns_rejected`), `idle_timeout` rides on `SO_RCVTIMEO` — a
/// connection that sends no byte for that long (mid-frame or between
/// frames alike) is closed and counted in `conns_timed_out`.
pub(crate) fn serve_blocking(
    server: Arc<PredictionServer>,
    listener: TcpListener,
    config: &TransportConfig,
) -> io::Result<()> {
    let max_conns = config.max_conns_or_unlimited();
    let idle_timeout = config.idle_timeout;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if !server.server_stats().try_admit(max_conns, false) {
            continue; // dropping the stream closes it
        }
        let server = server.clone();
        std::thread::Builder::new()
            .name("gps-serve-conn".to_string())
            .spawn(move || {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(idle_timeout);
                let result = serve_connection(&server, stream);
                let stats = server.server_stats();
                if let Err(e) = result {
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) {
                        stats.conns_timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
                stats.conns_closed.fetch_add(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// A blocking protocol client (used by `gps query`, `gps reload`,
/// loadgen, and tests), speaking either wire format — pick with
/// [`connect_with`](Client::connect_with); [`connect`](Client::connect)
/// stays JSON. Every request carries a monotonically increasing `id`,
/// and the echoed id on the reply — error replies included — is
/// verified, so a desynchronized stream surfaces as a hard error instead
/// of silently mis-attributed answers.
///
/// On a binary client the hot calls (`ping`, `predict`, `predict_batch`)
/// use native GPSQ messages; the admin calls (`stats`, `manifest`,
/// `reload`, ...) ride the GPSQ admin envelope, so every method works on
/// either format and answers identically.
pub struct Client {
    reader: io::BufReader<TcpStream>,
    writer: io::BufWriter<TcpStream>,
    next_id: u64,
    wire: WireFormat,
    /// Persistent response decoder (binary sessions): carries framing
    /// state and catches a server that flips format mid-stream.
    decoder: FrameDecoder,
    /// Reused request/response scratch (binary sessions).
    buf: Vec<u8>,
}

/// Connection settings for [`Client::connect_config`]. The plain
/// constructors ([`Client::connect`], [`Client::connect_with`]) keep
/// their historical no-timeout behavior; anything that must survive a
/// hung or dead server — the router's backend connections, `gps query`
/// against a remote box — sets deadlines here.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub wire: WireFormat,
    /// Bound on TCP connect (`None` = the OS default, typically minutes).
    pub connect_timeout: Option<Duration>,
    /// Per-read socket deadline; an expiry surfaces as a
    /// [`ClientError::Retryable`] timeout.
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            wire: WireFormat::Json,
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

impl ClientConfig {
    /// All three deadlines set to `timeout` on the given wire.
    pub fn timeouts(wire: WireFormat, timeout: Duration) -> ClientConfig {
        ClientConfig {
            wire,
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
        }
    }
}

/// [`Client`] failures sorted by what the caller should do about them.
/// Built from the `io::Result` the client methods return (the methods
/// keep their `io::Result` signatures — every existing call site works
/// unchanged; classify with [`ClientError::from_io`]).
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure — timeout, refused/reset connection,
    /// server closed mid-call. The request may be retried, on this
    /// backend after a backoff or immediately on another one; predict
    /// queries are idempotent so a retry can never double-apply.
    Retryable(io::Error),
    /// Protocol breakage (desynchronized ids, malformed frames) or
    /// local misuse (oversized frame). Retrying sends the same doomed
    /// bytes; the connection is not trustworthy.
    Fatal(io::Error),
    /// The server understood the request and answered `ok:false` — an
    /// application error ("unknown cmd", "batch too large", "unknown
    /// model ..."). Deterministic: a retry elsewhere gets the same
    /// answer, so forward it to whoever asked.
    Server(String),
}

impl ClientError {
    /// Classify an error returned by any [`Client`] method.
    pub fn from_io(e: io::Error) -> ClientError {
        match e.kind() {
            // `WouldBlock` is how Unix reports an expired SO_RCVTIMEO /
            // SO_SNDTIMEO on a blocking socket.
            io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::WriteZero
            | io::ErrorKind::AddrNotAvailable
            | io::ErrorKind::UnexpectedEof => ClientError::Retryable(e),
            // The client maps `ok:false` replies to `ErrorKind::Other`
            // with the server's message as the error text.
            io::ErrorKind::Other => ClientError::Server(e.to_string()),
            _ => ClientError::Fatal(e),
        }
    }

    /// Whether retrying the request (here after a backoff, or on another
    /// backend) can plausibly succeed.
    pub fn retryable(&self) -> bool {
        matches!(self, ClientError::Retryable(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Retryable(e) => write!(f, "retryable: {e}"),
            ClientError::Fatal(e) => write!(f, "fatal: {e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl Client {
    /// Connect speaking JSON (the historical default).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Self::connect_with(addr, WireFormat::Json)
    }

    /// Connect speaking the given wire format.
    pub fn connect_with(addr: impl ToSocketAddrs, wire: WireFormat) -> io::Result<Client> {
        Self::connect_config(
            addr,
            &ClientConfig {
                wire,
                ..ClientConfig::default()
            },
        )
    }

    /// Connect with explicit timeouts (and wire format).
    pub fn connect_config(addr: impl ToSocketAddrs, config: &ClientConfig) -> io::Result<Client> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                // `connect_timeout` wants one resolved address; try each
                // resolution like `TcpStream::connect` does.
                let mut last = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last.unwrap_or_else(|| {
                            io::Error::new(io::ErrorKind::InvalidInput, "no addresses to connect")
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(Client {
            reader: io::BufReader::new(stream.try_clone()?),
            writer: io::BufWriter::new(stream),
            next_id: 1,
            wire: config.wire,
            decoder: FrameDecoder::new(MAX_FRAME_BYTES),
            buf: Vec::new(),
        })
    }

    /// The wire format this client negotiated.
    pub fn wire(&self) -> WireFormat {
        self.wire
    }

    /// Read one GPSQ response payload into a decoded [`wire::Response`].
    fn read_binary_response(&mut self) -> io::Result<wire::Response> {
        let payload = read_frame_payload(&mut self.reader, &mut self.decoder)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        wire::decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn verify_id(&self, got: Option<u64>, want: u64) -> io::Result<()> {
        if got == Some(want) {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response does not echo request id {want}"),
            ))
        }
    }

    /// Takes the request by value: every caller builds it fresh, and a
    /// large `batch` request would otherwise be deep-cloned just to tack
    /// the id on. On a binary session the JSON request rides the GPSQ
    /// admin envelope — same semantics, same replies.
    fn call(&mut self, mut request: Json) -> io::Result<Json> {
        let id = self.next_id;
        self.next_id += 1;
        request.set("id", Json::Num(id as f64));
        let response = match self.wire {
            WireFormat::Json => {
                write_frame(&mut self.writer, &request)?;
                read_frame(&mut self.reader)?
                    .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?
            }
            WireFormat::Binary => {
                let mut text = String::new();
                request.write(&mut text);
                self.buf.clear();
                if !append_binary_frame(&mut self.buf, |w| wire::encode_admin_request(&text, w)) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "frame too large",
                    ));
                }
                self.writer.write_all(&self.buf)?;
                self.writer.flush()?;
                match self.read_binary_response()? {
                    wire::Response::Admin { json } => Json::parse(&json)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
                    // The server answers a broken admin *envelope* with a
                    // native error frame (the embedded JSON never parsed,
                    // so there is no JSON reply to wrap).
                    wire::Response::Error { message, .. } => return Err(io::Error::other(message)),
                    _ => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "expected an admin envelope reply",
                        ))
                    }
                }
            }
        };
        if response.get("id").and_then(Json::as_u64) != Some(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response does not echo request id {id}"),
            ));
        }
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            _ => {
                let message = response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string();
                Err(io::Error::other(message))
            }
        }
    }

    pub fn ping(&mut self) -> io::Result<()> {
        if self.wire == WireFormat::Binary {
            let id = self.next_id;
            self.next_id += 1;
            self.buf.clear();
            assert!(append_binary_frame(&mut self.buf, |w| {
                wire::encode_ping(Some(id), w)
            }));
            self.writer.write_all(&self.buf)?;
            self.writer.flush()?;
            return match self.read_binary_response()? {
                wire::Response::Pong { id: got } => self.verify_id(got, id),
                wire::Response::Error { id: got, message } => {
                    self.verify_id(got, id)?;
                    Err(io::Error::other(message))
                }
                _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected pong")),
            };
        }
        let mut request = Json::obj();
        request.set("cmd", "ping");
        self.call(request).map(|_| ())
    }

    /// Predict against the server's default model.
    pub fn predict(&mut self, query: &Query) -> io::Result<Ranked> {
        self.predict_on(None, query)
    }

    /// Predict against a specific model id (`None` = the default model).
    pub fn predict_on(&mut self, model: Option<&str>, query: &Query) -> io::Result<Ranked> {
        if self.wire == WireFormat::Binary {
            let mut rankings =
                self.call_binary_predict(model, std::slice::from_ref(query), false)?;
            return rankings
                .pop()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no predictions"));
        }
        let mut request = query_to_json(query);
        request.set("cmd", "predict");
        // `cmd` is appended after the query fields; field order is free.
        if let Some(id) = model {
            request.set("model", id);
        }
        let response = self.call(request)?;
        ranked_from_json(
            response
                .get("predictions")
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no predictions"))?,
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    pub fn predict_batch(&mut self, queries: &[Query]) -> io::Result<Vec<Ranked>> {
        self.predict_batch_on(None, queries)
    }

    /// Batch-predict against a specific model id (`None` = the default).
    pub fn predict_batch_on(
        &mut self,
        model: Option<&str>,
        queries: &[Query],
    ) -> io::Result<Vec<Ranked>> {
        if self.wire == WireFormat::Binary {
            return self.call_binary_predict(model, queries, true);
        }
        let mut request = Json::obj();
        request.set("cmd", "batch").set(
            "queries",
            queries.iter().map(query_to_json).collect::<Vec<_>>(),
        );
        if let Some(id) = model {
            request.set("model", id);
        }
        let response = self.call(request)?;
        response
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no results"))?
            .iter()
            .map(|r| ranked_from_json(r).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)))
            .collect()
    }

    /// Send one single-query predict without waiting for the reply
    /// (pipelined mode); returns the request id to pass to
    /// [`predict_recv`](Self::predict_recv). The frame is buffered, not
    /// flushed — consecutive sends coalesce into one syscall, which is
    /// where pipelining's amortization comes from. Responses come back
    /// in request order (the server guarantees it on both transports),
    /// so receive in send order, per connection.
    pub fn predict_send(&mut self, model: Option<&str>, query: &Query) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        match self.wire {
            WireFormat::Json => {
                let mut request = query_to_json(query);
                request.set("cmd", "predict");
                if let Some(model) = model {
                    request.set("model", model);
                }
                request.set("id", Json::Num(id as f64));
                let mut text = String::new();
                request.write(&mut text);
                let len = u32::try_from(text.len())
                    .ok()
                    .filter(|&n| n <= MAX_FRAME_BYTES)
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "frame too large")
                    })?;
                self.writer.write_all(&len.to_be_bytes())?;
                self.writer.write_all(text.as_bytes())?;
            }
            WireFormat::Binary => {
                self.buf.clear();
                if !append_binary_frame(&mut self.buf, |w| {
                    wire::encode_predict(Some(id), model, query, w)
                }) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "frame too large",
                    ));
                }
                self.writer.write_all(&self.buf)?;
            }
        }
        Ok(id)
    }

    /// Receive the next pipelined predict response, which must answer
    /// the request whose [`predict_send`](Self::predict_send) returned
    /// `id`. Flushes any buffered sends first.
    pub fn predict_recv(&mut self, id: u64) -> io::Result<Ranked> {
        self.writer.flush()?;
        match self.wire {
            WireFormat::Json => {
                let response = read_frame(&mut self.reader)?
                    .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
                if response.get("id").and_then(Json::as_u64) != Some(id) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response does not echo request id {id}"),
                    ));
                }
                match response.get("ok").and_then(Json::as_bool) {
                    Some(true) => {
                        ranked_from_json(response.get("predictions").ok_or_else(|| {
                            io::Error::new(io::ErrorKind::InvalidData, "no predictions")
                        })?)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
                    }
                    _ => Err(io::Error::other(
                        response
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown server error")
                            .to_string(),
                    )),
                }
            }
            WireFormat::Binary => match self.read_binary_response()? {
                wire::Response::Predict { id: got, ranking } => {
                    self.verify_id(got, id)?;
                    Ok(ranking)
                }
                wire::Response::Error { id: got, message } => {
                    self.verify_id(got, id)?;
                    Err(io::Error::other(message))
                }
                _ => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected GPSQ response kind",
                )),
            },
        }
    }

    /// The native GPSQ predict path (single and batch shapes).
    fn call_binary_predict(
        &mut self,
        model: Option<&str>,
        queries: &[Query],
        batch: bool,
    ) -> io::Result<Vec<Ranked>> {
        let id = self.next_id;
        self.next_id += 1;
        self.buf.clear();
        let encoded = append_binary_frame(&mut self.buf, |w| {
            if batch {
                wire::encode_batch(Some(id), model, queries, w);
            } else {
                wire::encode_predict(Some(id), model, &queries[0], w);
            }
        });
        if !encoded {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "frame too large",
            ));
        }
        self.writer.write_all(&self.buf)?;
        self.writer.flush()?;
        match self.read_binary_response()? {
            wire::Response::Predict { id: got, ranking } if !batch => {
                self.verify_id(got, id)?;
                Ok(vec![ranking])
            }
            wire::Response::Batch { id: got, rankings } if batch => {
                self.verify_id(got, id)?;
                Ok(rankings)
            }
            wire::Response::Error { id: got, message } => {
                self.verify_id(got, id)?;
                Err(io::Error::other(message))
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected GPSQ response kind",
            )),
        }
    }

    pub fn stats(&mut self) -> io::Result<Json> {
        let mut request = Json::obj();
        request.set("cmd", "stats");
        let response = self.call(request)?;
        response
            .get("stats")
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no stats"))
    }

    /// Zero the server's traffic counters and histograms (`reset-stats`).
    pub fn reset_stats(&mut self) -> io::Result<()> {
        let mut request = Json::obj();
        request.set("cmd", "reset-stats");
        self.call(request).map(|_| ())
    }

    /// Ask the server to drain and shut down (`shutdown`): it stops
    /// admitting connections, flushes its query log, answers everything
    /// in flight — this ack included — then closes.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let mut request = Json::obj();
        request.set("cmd", "shutdown");
        self.call(request).map(|_| ())
    }

    pub fn manifest(&mut self) -> io::Result<Json> {
        self.manifest_of(None)
    }

    /// Manifest of a specific model id (`None` = the default model).
    pub fn manifest_of(&mut self, model: Option<&str>) -> io::Result<Json> {
        let mut request = Json::obj();
        request.set("cmd", "manifest");
        if let Some(id) = model {
            request.set("model", id);
        }
        let response = self.call(request)?;
        response
            .get("manifest")
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no manifest"))
    }

    /// Ask the server to hot-reload its default model's snapshot — from
    /// `model` (a path) if given, else from the file it is already
    /// serving. The returned outcome is taken from the reload reply
    /// itself, so it describes exactly the model this reload published (a
    /// follow-up `manifest` call could race with another reload).
    pub fn reload(&mut self, model: Option<&str>) -> io::Result<ReloadOutcome> {
        self.reload_named(None, model)
    }

    /// [`reload`](Self::reload) for a specific model id (`None` = the
    /// default model); `path` optionally switches that model to a
    /// different snapshot file.
    pub fn reload_named(
        &mut self,
        name: Option<&str>,
        path: Option<&str>,
    ) -> io::Result<ReloadOutcome> {
        let mut request = Json::obj();
        request.set("cmd", "reload");
        if let Some(name) = name {
            request.set("name", name);
        }
        if let Some(path) = path {
            request.set("model", path);
        }
        let response = self.call(request)?;
        let generation = response
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no generation"))?;
        Ok(ReloadOutcome {
            generation,
            num_rules: response
                .get("num_rules")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            num_priors: response
                .get("num_priors")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            checksum: response
                .get("checksum")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
        })
    }

    /// Register a new model on the server from a snapshot path.
    pub fn load_model(&mut self, name: &str, path: &str) -> io::Result<()> {
        let mut request = Json::obj();
        request
            .set("cmd", "load")
            .set("name", name)
            .set("model", path);
        self.call(request).map(|_| ())
    }

    /// Drop a model from the server's registry (the default cannot be
    /// unloaded).
    pub fn unload_model(&mut self, name: &str) -> io::Result<()> {
        let mut request = Json::obj();
        request.set("cmd", "unload").set("name", name);
        self.call(request).map(|_| ())
    }

    /// Every registered model with its per-model counters, as the server
    /// reported them (sorted by id).
    pub fn list_models(&mut self) -> io::Result<Vec<Json>> {
        let mut request = Json::obj();
        request.set("cmd", "list-models");
        let response = self.call(request)?;
        response
            .get("models")
            .and_then(Json::as_arr)
            .map(|models| models.to_vec())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no models"))
    }
}

/// What a successful [`Client::reload`] published, per the server's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The post-swap model generation.
    pub generation: u64,
    pub num_rules: u64,
    pub num_priors: u64,
    /// Hex manifest checksum of the now-serving snapshot.
    pub checksum: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut json = Json::obj();
        json.set("cmd", "predict").set("ip", "1.2.3.4");
        let mut buf = Vec::new();
        write_frame(&mut buf, &json).unwrap();
        assert_eq!(&buf[..4], &(buf.len() as u32 - 4).to_be_bytes());
        let parsed = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(parsed, json);
        // Clean EOF.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_frame_is_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // EOF mid-length-prefix is truncation, not a clean close.
        assert!(read_frame(&mut [0u8, 0].as_slice()).is_err());
        // EOF before any byte IS a clean close.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn query_json_round_trip() {
        let mut query = Query::new(Ip::from_octets(10, 1, 2, 3)).with_open([443, 80]);
        query.asn = Some(64500);
        query.top = 5;
        let json = query_to_json(&query);
        assert_eq!(query_from_json(&json).unwrap(), query);
        // Minimal query: just an IP.
        let minimal = query_to_json(&Query::new(Ip::from_octets(1, 1, 1, 1)));
        let parsed = query_from_json(&minimal).unwrap();
        assert!(parsed.open.is_empty() && parsed.asn.is_none() && parsed.top == 0);
    }

    #[test]
    fn ranked_json_round_trip() {
        let ranked: Ranked = vec![(Port(443), 0.875), (Port(22), 1.0 / 3.0)];
        assert_eq!(ranked_from_json(&ranked_to_json(&ranked)).unwrap(), ranked);
    }
}
