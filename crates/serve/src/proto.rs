//! Wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is a 4-byte big-endian length followed by that many bytes
//! of JSON. Requests are objects with a `cmd` field:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"predict","ip":"10.1.2.3","open":[80,443],"asn":7,"top":8}
//! {"cmd":"predict","ip":"10.1.2.3","model":"lzr-day3"}  — pick a model id
//! {"cmd":"batch","queries":[{"ip":...}, ...],"model":"quick"}
//! {"cmd":"stats"}                        — includes per-model breakdown
//! {"cmd":"manifest"}                     — optional "model" id too
//! {"cmd":"reload"}                       — re-read the served snapshot file
//! {"cmd":"reload","model":"/path.gpsb"}  — switch to a different snapshot
//! {"cmd":"reload","name":"quick"}        — reload a specific model id
//! {"cmd":"load","name":"b","model":"/b.gpsb"}  — register a new model
//! {"cmd":"unload","name":"b"}            — drop a model (not the default)
//! {"cmd":"list-models"}                  — every model id + its counters
//! ```
//!
//! The server holds a *registry* of models keyed by id (`server.rs`); a
//! frame without `"model"`/`"name"` routes to the default model, so
//! pre-registry clients work unchanged. On query/batch/manifest frames
//! `"model"` is a model *id*; on `reload`/`load` frames `"model"` remains
//! the snapshot *path* it always was, and `"name"` carries the id.
//!
//! Successful responses carry `"ok":true` plus the payload; failures carry
//! `"ok":false` and an `"error"` string (a malformed request never kills
//! the connection; an unknown model id is an error reply like any other).
//! A request may carry an `"id"` (any JSON value); the response — success
//! *or* error — echoes it verbatim, so pipelining clients can correlate
//! failures with the request that caused them.
//!
//! `reload` swaps a served model with zero downtime (see the epoch slots
//! in `server.rs`); like `stats`, the admin commands are trusted-operator
//! surface — anyone who can reach the port can point the server at a
//! different snapshot *file path*, so bind to loopback or put an
//! authenticating proxy in front. The server is std-only and speaks this
//! protocol over either of two transports (`crate::transport`): the
//! thread-per-connection loop in this module — simplest, lowest latency
//! at moderate fan-in — and the event-driven loop in `crate::net`, which
//! multiplexes tens of thousands of mostly-idle connections over a few
//! threads. Request handling is shared (`classify` + the response
//! builders), so the transports answer identically.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::artifact::{Query, Ranked};
use crate::net::FrameDecoder;
use crate::server::{ModelEntry, PredictionServer};
use crate::transport::TransportConfig;
use gps_types::json::Json;
use gps_types::{Ip, JsonCodec, Port};

/// Frames above this many bytes are rejected (a length prefix is attacker
/// input; without a cap a single frame could balloon memory).
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Largest batch a single `batch` request may carry.
pub const MAX_BATCH_QUERIES: usize = 65_536;

/// Most open-port evidence entries a single query may carry. Evidence
/// becomes part of per-shard LRU cache keys, so unbounded lists from the
/// wire would let one client pin gigabytes of key data in the caches.
pub const MAX_OPEN_PORTS: usize = 64;

/// Largest `top` a query may request over the wire (bounds response size).
pub const MAX_TOP: usize = 65_536;

/// Write one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let mut text = String::new();
    json.write(&mut text);
    let len = u32::try_from(text.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_BYTES)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF before a length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    match read_frame_text(r)? {
        None => Ok(None),
        Some(text) => Json::parse(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Read one frame's payload text; `Ok(None)` on clean EOF before a length
/// prefix. Errors here are *framing* errors (truncation, size cap,
/// non-UTF-8): the stream position can no longer be trusted, so the
/// connection must close. Whether the text parses is the caller's concern
/// — the server replies to well-framed garbage instead of disconnecting.
pub fn read_frame_text(r: &mut impl Read) -> io::Result<Option<String>> {
    // Driven through the same incremental decoder the event transport
    // uses, with exact-sized reads (`need()`), so a length prefix or body
    // torn across arbitrarily small TCP segments reassembles correctly
    // and no byte of the *next* frame is ever consumed. Only EOF before
    // the first length byte is a clean close; EOF midway through a frame
    // is truncation from a dead peer.
    let mut decoder = FrameDecoder::new(MAX_FRAME_BYTES);
    let mut frames = Vec::with_capacity(1);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let want = decoder.need().min(chunk.len());
        let n = match r.read(&mut chunk[..want]) {
            Ok(0) => {
                return if decoder.at_boundary() {
                    Ok(None)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        decoder
            .feed(&chunk[..n], &mut frames)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if let Some(text) = frames.pop() {
            return Ok(Some(text));
        }
    }
}

/// Encode a query for the wire.
pub fn query_to_json(query: &Query) -> Json {
    let mut json = Json::obj();
    json.set("ip", query.ip.to_json());
    if !query.open.is_empty() {
        json.set(
            "open",
            query.open.iter().map(|p| p.to_json()).collect::<Vec<_>>(),
        );
    }
    if let Some(asn) = query.asn {
        json.set("asn", asn);
    }
    if query.top > 0 {
        json.set("top", query.top);
    }
    json
}

/// Decode a query from the wire.
pub fn query_from_json(json: &Json) -> Result<Query, String> {
    let ip =
        Ip::from_json(json.req("ip").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let mut query = Query::new(ip);
    if let Some(open) = json.get("open") {
        let open = open.as_arr().ok_or("open must be an array")?;
        if open.len() > MAX_OPEN_PORTS {
            return Err(format!("open lists at most {MAX_OPEN_PORTS} ports"));
        }
        for port in open {
            query
                .open
                .push(Port::from_json(port).map_err(|e| e.to_string())?);
        }
    }
    if let Some(asn) = json.get("asn") {
        query.asn = Some(
            asn.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or("bad asn")?,
        );
    }
    if let Some(top) = json.get("top") {
        let top = top.as_u64().ok_or("bad top")? as usize;
        if top > MAX_TOP {
            return Err(format!("top is capped at {MAX_TOP}"));
        }
        query.top = top;
    }
    Ok(query)
}

/// `[[port, prob], ...]`.
pub fn ranked_to_json(ranked: &Ranked) -> Json {
    Json::Arr(
        ranked
            .iter()
            .map(|&(port, prob)| Json::Arr(vec![port.to_json(), Json::Num(prob)]))
            .collect(),
    )
}

/// Inverse of [`ranked_to_json`].
pub fn ranked_from_json(json: &Json) -> Result<Ranked, String> {
    json.as_arr()
        .ok_or("predictions must be an array")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("bad prediction pair")?;
            let port = Port::from_json(&pair[0]).map_err(|e| e.to_string())?;
            let prob = pair[1].as_f64().ok_or("bad probability")?;
            Ok((port, prob))
        })
        .collect()
}

pub(crate) fn ok_response() -> Json {
    let mut json = Json::obj();
    json.set("ok", true);
    json
}

pub(crate) fn error_response(message: impl Into<String>) -> Json {
    let mut json = Json::obj();
    json.set("ok", false).set("error", message.into());
    json
}

/// Serialize a response frame; if the response exceeds the frame cap (a
/// legal request can still produce one — a huge batch against a
/// rule-rich model), substitute the standard over-cap error reply,
/// carrying the request id so the client can still correlate it.
pub(crate) fn encode_frame_or_error(response: &Json, request_id: Option<&Json>) -> Vec<u8> {
    let mut buf = Vec::new();
    if write_frame(&mut buf, response).is_ok() {
        return buf;
    }
    buf.clear();
    let mut oversized = error_response("response exceeds frame size cap");
    if let Some(id) = request_id {
        oversized.set("id", id.clone());
    }
    write_frame(&mut buf, &oversized).expect("error frame fits the cap");
    buf
}

/// An optional string field that, when present, must actually be a
/// string (`Ok(None)` when absent).
fn optional_str<'a>(request: &'a Json, field: &str) -> Result<Option<&'a str>, String> {
    match request.get(field) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.as_str())),
        Some(_) => Err(format!("{field} must be a string")),
    }
}

/// How one request frame is to be answered. `classify` is the request
/// core both transports share: every command except the predicts is
/// fully computed here; the predicts come back as *work* (the resolved
/// model entry plus parsed queries), because the blocking transport
/// executes them in place while the event transport pipelines them into
/// the shard workers and answers when completions return. Running the
/// same classification and the same response builders is what makes the
/// two transports answer byte-identically — asserted by the
/// transport-parity e2e suite.
pub(crate) enum Action {
    /// The response, finished.
    Ready(Json),
    /// Shard work: answer with [`predict_response`] once every query in
    /// `queries` has its answer.
    Predict {
        entry: Arc<ModelEntry>,
        queries: Vec<Query>,
        /// `batch` frames answer with `"results"`, singles with
        /// `"predictions"`.
        batch: bool,
    },
}

/// Build the success reply for completed predict work (both shapes).
pub(crate) fn predict_response(answers: &[Arc<Ranked>], batch: bool) -> Json {
    let mut json = ok_response();
    if batch {
        json.set(
            "results",
            answers
                .iter()
                .map(|r| ranked_to_json(r))
                .collect::<Vec<_>>(),
        );
    } else {
        json.set("predictions", ranked_to_json(&answers[0]));
    }
    json
}

/// Classify one request frame into a finished response or predict work.
pub(crate) fn classify(server: &PredictionServer, request: &Json) -> Action {
    let ready = Action::Ready;
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(cmd) => cmd,
        None => return ready(error_response("missing cmd")),
    };
    // On query-shaped frames `"model"` is a registry id; absence means
    // the default model (the pre-registry wire behavior, unchanged).
    let model_id = match optional_str(request, "model") {
        Ok(id) => id,
        Err(e) => return ready(error_response(e)),
    };
    // Resolve the serving entry for the predict commands up front so the
    // unknown-model error is identical on both shapes.
    let resolve = |id: Option<&str>| -> Result<Arc<ModelEntry>, String> {
        match id {
            None => Ok(server.default_entry().clone()),
            Some(id) => server.entry(id),
        }
    };
    match cmd {
        "ping" => {
            let mut json = ok_response();
            json.set("pong", true);
            ready(json)
        }
        "predict" => match query_from_json(request) {
            Ok(query) => match resolve(model_id) {
                Ok(entry) => Action::Predict {
                    entry,
                    queries: vec![query],
                    batch: false,
                },
                Err(e) => ready(error_response(e)),
            },
            Err(e) => ready(error_response(e)),
        },
        "batch" => {
            let queries = match request.get("queries").and_then(Json::as_arr) {
                Some(items) if items.len() <= MAX_BATCH_QUERIES => items,
                Some(_) => return ready(error_response("batch too large")),
                None => return ready(error_response("missing queries")),
            };
            let mut parsed = Vec::with_capacity(queries.len());
            for q in queries {
                match query_from_json(q) {
                    Ok(query) => parsed.push(query),
                    Err(e) => return ready(error_response(e)),
                }
            }
            match resolve(model_id) {
                Ok(entry) => Action::Predict {
                    entry,
                    queries: parsed,
                    batch: true,
                },
                Err(e) => ready(error_response(e)),
            }
        }
        "stats" => {
            let mut json = ok_response();
            json.set("stats", server.stats().to_json());
            ready(json)
        }
        "manifest" => {
            let (model, generation) = match model_id {
                None => (server.model(), server.generation()),
                Some(id) => match (server.model_of(id), server.generation_of(id)) {
                    (Ok(model), Ok(generation)) => (model, generation),
                    (Err(e), _) | (_, Err(e)) => return ready(error_response(e)),
                },
            };
            let m = model.manifest();
            let mut inner = Json::obj();
            inner
                .set("dataset", m.dataset_name.as_str())
                .set(
                    "universe_seed",
                    gps_types::json::u64_to_hex(m.universe_seed),
                )
                .set("step_prefix", m.step_prefix)
                .set("distinct_keys", m.distinct_keys)
                .set("num_rules", m.num_rules)
                .set("num_priors", m.num_priors)
                .set("checksum", gps_types::json::u64_to_hex(m.checksum));
            let mut json = ok_response();
            json.set("manifest", inner)
                .set("generation", Json::Num(generation as f64));
            ready(json)
        }
        "reload" => {
            // Here `"model"` keeps its pre-registry meaning — a snapshot
            // *path* — and the registry id rides in `"name"`.
            let path = model_id.map(std::path::PathBuf::from);
            let name = match optional_str(request, "name") {
                Ok(name) => name,
                Err(e) => return ready(error_response(e)),
            };
            let result = match name {
                None => server.reload_from_disk(path.as_deref()),
                Some(id) => server.reload_model_from_disk(id, path.as_deref()),
            };
            match result {
                // Describe the model *this* reload published — reading
                // the slot again here could race with a concurrent
                // reload and misattribute the manifest.
                Ok((generation, model)) => {
                    let m = model.manifest();
                    let mut json = ok_response();
                    json.set("generation", Json::Num(generation as f64))
                        .set("num_rules", m.num_rules)
                        .set("num_priors", m.num_priors)
                        .set("checksum", gps_types::json::u64_to_hex(m.checksum));
                    if let Some(name) = name {
                        json.set("name", name);
                    }
                    ready(json)
                }
                // The old model is still serving; the error only reports
                // why the swap did not happen.
                Err(e) => ready(error_response(format!("reload failed: {e}"))),
            }
        }
        "load" => {
            let name = match optional_str(request, "name") {
                Ok(Some(name)) => name,
                Ok(None) => return ready(error_response("load requires a name")),
                Err(e) => return ready(error_response(e)),
            };
            let path = match model_id {
                Some(path) => std::path::PathBuf::from(path),
                None => return ready(error_response("load requires a model snapshot path")),
            };
            match server.load_model_from_disk(name, &path) {
                Ok(model) => {
                    let m = model.manifest();
                    let mut json = ok_response();
                    json.set("name", name)
                        .set("num_rules", m.num_rules)
                        .set("num_priors", m.num_priors)
                        .set("checksum", gps_types::json::u64_to_hex(m.checksum));
                    ready(json)
                }
                Err(e) => ready(error_response(format!("load failed: {e}"))),
            }
        }
        "unload" => {
            let name = match optional_str(request, "name") {
                Ok(Some(name)) => name,
                Ok(None) => return ready(error_response("unload requires a name")),
                Err(e) => return ready(error_response(e)),
            };
            match server.unload_model(name) {
                Ok(()) => {
                    let mut json = ok_response();
                    json.set("name", name);
                    ready(json)
                }
                Err(e) => ready(error_response(format!("unload failed: {e}"))),
            }
        }
        "list-models" => {
            let stats = server.stats();
            let mut json = ok_response();
            json.set(
                "models",
                stats
                    .models
                    .iter()
                    .map(|m| {
                        let mut entry = m.to_json();
                        entry.set("name", m.id.as_str());
                        entry
                    })
                    .collect::<Vec<_>>(),
            );
            ready(json)
        }
        other => ready(error_response(format!("unknown cmd {other:?}"))),
    }
}

/// Compute the response for one request frame, executing predict work in
/// place (the blocking transports' path through the shared core).
fn respond(server: &PredictionServer, request: &Json) -> Json {
    match classify(server, request) {
        Action::Ready(json) => json,
        Action::Predict {
            entry,
            queries,
            batch,
        } => {
            if batch {
                let answers = server.predict_batch_entry(entry, queries);
                predict_response(&answers, true)
            } else {
                let query = queries.into_iter().next().expect("one query");
                let answer = server.predict_entry(entry, query);
                predict_response(&[answer], false)
            }
        }
    }
}

/// Serve one accepted connection until EOF or a framing error. A frame
/// that is well-framed but not valid JSON gets an error *response* — only
/// breakage that desynchronizes the stream closes the connection.
pub fn serve_connection(server: &PredictionServer, stream: TcpStream) -> io::Result<()> {
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    while let Some(text) = read_frame_text(&mut reader)? {
        // The request id (if any) is echoed on every reply, error replies
        // included — a pipelining client must be able to tell *which*
        // request of a burst failed. Unparseable JSON has no extractable
        // id, so only framing-level garbage goes un-correlated.
        let mut request_id = None;
        let mut response = match Json::parse(&text) {
            Ok(request) => {
                request_id = request.get("id").cloned();
                respond(server, &request)
            }
            Err(e) => error_response(format!("bad json: {e}")),
        };
        if let Some(id) = &request_id {
            response.set("id", id.clone());
        }
        // `encode_frame_or_error` substitutes the standard over-cap error
        // reply (id included) if a legal request produced an over-cap
        // response — the same path the event transport serializes
        // through, so the fallback frame is byte-identical on both.
        let frame = encode_frame_or_error(&response, request_id.as_ref());
        writer.write_all(&frame)?;
        writer.flush()?;
    }
    Ok(())
}

/// Accept loop: one thread per connection. Blocks forever; run it on a
/// dedicated thread if the caller needs to keep working. Equivalent to
/// [`crate::transport::serve`] with a default (threads-transport)
/// [`TransportConfig`].
pub fn serve_tcp(server: Arc<PredictionServer>, listener: TcpListener) -> io::Result<()> {
    serve_blocking(server, listener, &TransportConfig::default())
}

/// The thread-per-connection transport with its knobs: `max_conns` caps
/// live connections (excess accepts are dropped on the floor, counted in
/// `conns_rejected`), `idle_timeout` rides on `SO_RCVTIMEO` — a
/// connection that sends no byte for that long (mid-frame or between
/// frames alike) is closed and counted in `conns_timed_out`.
pub(crate) fn serve_blocking(
    server: Arc<PredictionServer>,
    listener: TcpListener,
    config: &TransportConfig,
) -> io::Result<()> {
    let max_conns = config.max_conns_or_unlimited();
    let idle_timeout = config.idle_timeout;
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if !server.server_stats().try_admit(max_conns) {
            continue; // dropping the stream closes it
        }
        let server = server.clone();
        std::thread::Builder::new()
            .name("gps-serve-conn".to_string())
            .spawn(move || {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(idle_timeout);
                let result = serve_connection(&server, stream);
                let stats = server.server_stats();
                if let Err(e) = result {
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) {
                        stats.conns_timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                }
                stats.conns_closed.fetch_add(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread");
    }
    Ok(())
}

/// A blocking protocol client (used by `gps query`, `gps reload`,
/// loadgen, and tests). Every request carries a monotonically increasing
/// `id`, and the echoed id on the reply — error replies included — is
/// verified, so a desynchronized stream surfaces as a hard error instead
/// of silently mis-attributed answers.
pub struct Client {
    reader: io::BufReader<TcpStream>,
    writer: io::BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: io::BufReader::new(stream.try_clone()?),
            writer: io::BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Takes the request by value: every caller builds it fresh, and a
    /// large `batch` request would otherwise be deep-cloned just to tack
    /// the id on.
    fn call(&mut self, mut request: Json) -> io::Result<Json> {
        let id = self.next_id;
        self.next_id += 1;
        request.set("id", Json::Num(id as f64));
        write_frame(&mut self.writer, &request)?;
        let response = read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        if response.get("id").and_then(Json::as_u64) != Some(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response does not echo request id {id}"),
            ));
        }
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            _ => {
                let message = response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string();
                Err(io::Error::other(message))
            }
        }
    }

    pub fn ping(&mut self) -> io::Result<()> {
        let mut request = Json::obj();
        request.set("cmd", "ping");
        self.call(request).map(|_| ())
    }

    /// Predict against the server's default model.
    pub fn predict(&mut self, query: &Query) -> io::Result<Ranked> {
        self.predict_on(None, query)
    }

    /// Predict against a specific model id (`None` = the default model).
    pub fn predict_on(&mut self, model: Option<&str>, query: &Query) -> io::Result<Ranked> {
        let mut request = query_to_json(query);
        request.set("cmd", "predict");
        // `cmd` is appended after the query fields; field order is free.
        if let Some(id) = model {
            request.set("model", id);
        }
        let response = self.call(request)?;
        ranked_from_json(
            response
                .get("predictions")
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no predictions"))?,
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    pub fn predict_batch(&mut self, queries: &[Query]) -> io::Result<Vec<Ranked>> {
        self.predict_batch_on(None, queries)
    }

    /// Batch-predict against a specific model id (`None` = the default).
    pub fn predict_batch_on(
        &mut self,
        model: Option<&str>,
        queries: &[Query],
    ) -> io::Result<Vec<Ranked>> {
        let mut request = Json::obj();
        request.set("cmd", "batch").set(
            "queries",
            queries.iter().map(query_to_json).collect::<Vec<_>>(),
        );
        if let Some(id) = model {
            request.set("model", id);
        }
        let response = self.call(request)?;
        response
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no results"))?
            .iter()
            .map(|r| ranked_from_json(r).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)))
            .collect()
    }

    pub fn stats(&mut self) -> io::Result<Json> {
        let mut request = Json::obj();
        request.set("cmd", "stats");
        let response = self.call(request)?;
        response
            .get("stats")
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no stats"))
    }

    pub fn manifest(&mut self) -> io::Result<Json> {
        self.manifest_of(None)
    }

    /// Manifest of a specific model id (`None` = the default model).
    pub fn manifest_of(&mut self, model: Option<&str>) -> io::Result<Json> {
        let mut request = Json::obj();
        request.set("cmd", "manifest");
        if let Some(id) = model {
            request.set("model", id);
        }
        let response = self.call(request)?;
        response
            .get("manifest")
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no manifest"))
    }

    /// Ask the server to hot-reload its default model's snapshot — from
    /// `model` (a path) if given, else from the file it is already
    /// serving. The returned outcome is taken from the reload reply
    /// itself, so it describes exactly the model this reload published (a
    /// follow-up `manifest` call could race with another reload).
    pub fn reload(&mut self, model: Option<&str>) -> io::Result<ReloadOutcome> {
        self.reload_named(None, model)
    }

    /// [`reload`](Self::reload) for a specific model id (`None` = the
    /// default model); `path` optionally switches that model to a
    /// different snapshot file.
    pub fn reload_named(
        &mut self,
        name: Option<&str>,
        path: Option<&str>,
    ) -> io::Result<ReloadOutcome> {
        let mut request = Json::obj();
        request.set("cmd", "reload");
        if let Some(name) = name {
            request.set("name", name);
        }
        if let Some(path) = path {
            request.set("model", path);
        }
        let response = self.call(request)?;
        let generation = response
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no generation"))?;
        Ok(ReloadOutcome {
            generation,
            num_rules: response
                .get("num_rules")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            num_priors: response
                .get("num_priors")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            checksum: response
                .get("checksum")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
        })
    }

    /// Register a new model on the server from a snapshot path.
    pub fn load_model(&mut self, name: &str, path: &str) -> io::Result<()> {
        let mut request = Json::obj();
        request
            .set("cmd", "load")
            .set("name", name)
            .set("model", path);
        self.call(request).map(|_| ())
    }

    /// Drop a model from the server's registry (the default cannot be
    /// unloaded).
    pub fn unload_model(&mut self, name: &str) -> io::Result<()> {
        let mut request = Json::obj();
        request.set("cmd", "unload").set("name", name);
        self.call(request).map(|_| ())
    }

    /// Every registered model with its per-model counters, as the server
    /// reported them (sorted by id).
    pub fn list_models(&mut self) -> io::Result<Vec<Json>> {
        let mut request = Json::obj();
        request.set("cmd", "list-models");
        let response = self.call(request)?;
        response
            .get("models")
            .and_then(Json::as_arr)
            .map(|models| models.to_vec())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no models"))
    }
}

/// What a successful [`Client::reload`] published, per the server's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The post-swap model generation.
    pub generation: u64,
    pub num_rules: u64,
    pub num_priors: u64,
    /// Hex manifest checksum of the now-serving snapshot.
    pub checksum: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut json = Json::obj();
        json.set("cmd", "predict").set("ip", "1.2.3.4");
        let mut buf = Vec::new();
        write_frame(&mut buf, &json).unwrap();
        assert_eq!(&buf[..4], &(buf.len() as u32 - 4).to_be_bytes());
        let parsed = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(parsed, json);
        // Clean EOF.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_frame_is_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut buf.as_slice()).is_err());
        // EOF mid-length-prefix is truncation, not a clean close.
        assert!(read_frame(&mut [0u8, 0].as_slice()).is_err());
        // EOF before any byte IS a clean close.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn query_json_round_trip() {
        let mut query = Query::new(Ip::from_octets(10, 1, 2, 3)).with_open([443, 80]);
        query.asn = Some(64500);
        query.top = 5;
        let json = query_to_json(&query);
        assert_eq!(query_from_json(&json).unwrap(), query);
        // Minimal query: just an IP.
        let minimal = query_to_json(&Query::new(Ip::from_octets(1, 1, 1, 1)));
        let parsed = query_from_json(&minimal).unwrap();
        assert!(parsed.open.is_empty() && parsed.asn.is_none() && parsed.top == 0);
    }

    #[test]
    fn ranked_json_round_trip() {
        let ranked: Ranked = vec![(Port(443), 0.875), (Port(22), 1.0 / 3.0)];
        assert_eq!(ranked_from_json(&ranked_to_json(&ranked)).unwrap(), ranked);
    }
}
