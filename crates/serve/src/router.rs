//! The GPSQ routing tier: a thin, model-free process that speaks the
//! full frame protocol (JSON and GPSQ alike) on its front listener and
//! fans work out to N `gps serve` backends over pooled GPSQ clients.
//!
//! Fault tolerance is the point — the paper's predictions only matter
//! while they keep flowing into a running scan, and a single `gps serve`
//! process is a single point of failure:
//!
//! - **Placement.** Single queries are consistent-hashed by the query
//!   IP's /16 with the same Fibonacci hash the server's shards use
//!   (`Core::owner_of`), so one /16's answers concentrate on one backend and
//!   its caches stay hot.
//! - **Health.** Every backend carries a health state (`Up` → `Suspect`
//!   → `Down`) driven by a periodic `ping` prober *and* passively by
//!   forwarding errors. A downed backend is retried after an exponential
//!   backoff with deterministic jitter; the first successful call (or
//!   probe) brings it back.
//! - **Retry.** Predict queries are idempotent, so a retryable failure
//!   (timeout, reset, garbage frame) is retried on the next healthy
//!   backend — bounded by [`RouterConfig::max_retries`]. Application
//!   errors from a backend (`ok:false`) are deterministic and forwarded
//!   verbatim, never retried.
//! - **Shedding.** When no healthy backend remains for a query, the
//!   router answers an explicit `overloaded` error instead of queueing
//!   or hanging — the scanner's loop stays latency-bounded.
//! - **Drain.** The `shutdown` admin command (wire or HTTP) flips
//!   `/healthz` to 503 `draining`, stops accepting connections,
//!   finishes in-flight replies, then closes.
//!
//! Batches are partitioned by owner and fanned out concurrently, one
//! sub-batch per owning backend, with the same per-group retry; a group
//! that exhausts its retries fails the whole frame with one error reply
//! (partial answers are never silently dropped).
//!
//! The router holds no model: every reply a client sees was computed by
//! a backend, re-framed through the same `proto` encoders the server
//! uses, so a client cannot tell the router from a plain `gps serve`.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gps_types::Json;

use crate::artifact::{Query, Ranked};
use crate::net::{FrameDecoder, WireFormat};
use crate::proto::{
    encode_predict_reply, encode_ready, error_response, ok_response, query_from_json,
    read_frame_payload, ready_error, Client, ClientConfig, ClientError, ReadyReply, ReplyCtx,
    MAX_BATCH_QUERIES, MAX_FRAME_BYTES,
};
use crate::wire;

/// Knobs for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend addresses (`host:port`), order fixed at start; the
    /// consistent hash maps /16s onto this list by index.
    pub backends: Vec<String>,
    /// Cadence of the active `ping` prober.
    pub probe_interval: Duration,
    /// Per-attempt deadline on every backend call (connect, read, and
    /// write alike). A stalled backend surfaces as a retryable timeout
    /// within this bound.
    pub request_timeout: Duration,
    /// Most *additional* backends tried after the owner fails or is
    /// unavailable.
    pub max_retries: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            backends: Vec::new(),
            probe_interval: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            max_retries: 1,
        }
    }
}

/// Base of the down-backend reconnect backoff; doubles per consecutive
/// failure up to [`BACKOFF_CAP`].
const BACKOFF_BASE: Duration = Duration::from_millis(100);
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// The error message shed queries answer with (tests and operators grep
/// for the prefix).
pub const OVERLOADED: &str = "overloaded: no healthy backend";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Up,
    /// One recent failure: still routed to, but the next failure downs it.
    Suspect,
    Down,
}

impl Health {
    fn as_str(self) -> &'static str {
        match self {
            Health::Up => "up",
            Health::Suspect => "suspect",
            Health::Down => "down",
        }
    }
}

struct HealthMeta {
    health: Health,
    consecutive_failures: u32,
    /// While `Down`, routing skips this backend until the deadline (then
    /// one half-open attempt is allowed through).
    down_until: Option<Instant>,
}

struct BackendState {
    addr: String,
    meta: Mutex<HealthMeta>,
    /// Requests this backend answered successfully.
    forwarded: AtomicU64,
    /// Failed attempts against this backend (timeouts, resets, garbage).
    errors: AtomicU64,
}

impl BackendState {
    fn new(addr: String) -> BackendState {
        BackendState {
            addr,
            meta: Mutex::new(HealthMeta {
                health: Health::Up,
                consecutive_failures: 0,
                down_until: None,
            }),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    fn health(&self) -> Health {
        self.meta.lock().expect("backend meta").health
    }

    /// Whether routing may try this backend right now. A `Down` backend
    /// becomes eligible again once its backoff deadline passes — the
    /// half-open probe that discovers recovery.
    fn available(&self) -> bool {
        let meta = self.meta.lock().expect("backend meta");
        match meta.health {
            Health::Up | Health::Suspect => true,
            Health::Down => meta.down_until.is_none_or(|until| Instant::now() >= until),
        }
    }

    fn record_ok(&self) {
        let mut meta = self.meta.lock().expect("backend meta");
        meta.health = Health::Up;
        meta.consecutive_failures = 0;
        meta.down_until = None;
    }

    /// One failed attempt: first failure suspects, the second downs with
    /// exponential backoff plus deterministic jitter (so a fleet of
    /// routers doesn't reconnect in lockstep).
    fn record_failure(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let mut meta = self.meta.lock().expect("backend meta");
        meta.consecutive_failures = meta.consecutive_failures.saturating_add(1);
        if meta.consecutive_failures == 1 {
            meta.health = Health::Suspect;
            return;
        }
        meta.health = Health::Down;
        let exp = meta.consecutive_failures.saturating_sub(2).min(16);
        let backoff = BACKOFF_BASE.saturating_mul(1u32 << exp).min(BACKOFF_CAP);
        // Jitter in [0, backoff/4), xorshifted from the address and the
        // failure count — deterministic, but different per backend and
        // per round.
        let mut seed = meta.consecutive_failures as u64 + 0x9E37_79B9_7F4A_7C15;
        for byte in self.addr.as_bytes() {
            seed = (seed ^ *byte as u64).wrapping_mul(0x100_0000_01B3);
        }
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let jitter_ns = (backoff.as_nanos() as u64 / 4)
            .checked_rem(u64::MAX)
            .unwrap_or(0);
        let jitter = Duration::from_nanos(if jitter_ns == 0 { 0 } else { seed % jitter_ns });
        meta.down_until = Some(Instant::now() + backoff + jitter);
    }
}

/// Everything shared between connection threads, the prober, and the
/// handle.
struct Core {
    backends: Vec<BackendState>,
    config: RouterConfig,
    draining: AtomicBool,
    stop: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    /// Failed attempts that moved on to another backend.
    retries: AtomicU64,
    /// Queries answered `overloaded` because no backend was available.
    shed: AtomicU64,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    conns_rejected: AtomicU64,
}

impl Core {
    /// Which backend owns an IP: the same /16 Fibonacci hash the
    /// server's shards use, so a backend sees a stable subset of /16s
    /// and its caches stay hot across router restarts.
    fn owner_of(&self, ip: gps_types::Ip) -> usize {
        let slash16 = ip.0 >> 16;
        let h = (slash16 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.backends.len()
    }

    fn backend_client_config(&self) -> ClientConfig {
        ClientConfig::timeouts(WireFormat::Binary, self.config.request_timeout)
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// The `stats` reply. Carries the top-level connection/request keys
    /// loadgen's external mode reads (so `--addr <router>` runs work
    /// unchanged) plus a `"router"` section with the health picture.
    fn stats_json(&self) -> Json {
        let mut backends = Vec::with_capacity(self.backends.len());
        for b in &self.backends {
            let mut entry = Json::obj();
            entry
                .set("addr", b.addr.as_str())
                .set("health", b.health().as_str())
                .set("up", b.health() != Health::Down)
                .set(
                    "forwarded",
                    Json::Num(b.forwarded.load(Ordering::Relaxed) as f64),
                )
                .set("errors", Json::Num(b.errors.load(Ordering::Relaxed) as f64));
            backends.push(entry);
        }
        let mut router = Json::obj();
        router
            .set("backends", backends)
            .set(
                "retries_total",
                Json::Num(self.retries.load(Ordering::Relaxed) as f64),
            )
            .set(
                "shed_total",
                Json::Num(self.shed.load(Ordering::Relaxed) as f64),
            )
            .set("draining", self.is_draining());
        let accepted = self.conns_accepted.load(Ordering::Relaxed);
        let closed = self.conns_closed.load(Ordering::Relaxed);
        let mut json = Json::obj();
        json.set("version", env!("CARGO_PKG_VERSION"))
            .set(
                "requests",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            )
            .set("uptime_secs", self.started.elapsed().as_secs_f64())
            .set("conns_accepted", Json::Num(accepted as f64))
            .set("conns_closed", Json::Num(closed as f64))
            .set(
                "conns_active",
                Json::Num(accepted.saturating_sub(closed) as f64),
            )
            .set(
                "conns_rejected",
                Json::Num(self.conns_rejected.load(Ordering::Relaxed) as f64),
            )
            .set("draining", self.is_draining())
            .set("router", router);
        json
    }

    /// The Prometheus exposition of the router's counters and gauges.
    fn render_metrics(&self) -> String {
        use std::fmt::Write as _;
        let mut w = String::with_capacity(1024);
        let _ = writeln!(
            w,
            "# HELP gps_router_requests_total Requests the router answered."
        );
        let _ = writeln!(w, "# TYPE gps_router_requests_total counter");
        let _ = writeln!(
            w,
            "gps_router_requests_total {}",
            self.requests.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            w,
            "# HELP gps_retries_total Failed backend attempts retried elsewhere."
        );
        let _ = writeln!(w, "# TYPE gps_retries_total counter");
        let _ = writeln!(
            w,
            "gps_retries_total {}",
            self.retries.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            w,
            "# HELP gps_shed_total Queries answered `overloaded` (no healthy backend)."
        );
        let _ = writeln!(w, "# TYPE gps_shed_total counter");
        let _ = writeln!(w, "gps_shed_total {}", self.shed.load(Ordering::Relaxed));
        let _ = writeln!(
            w,
            "# HELP gps_backend_up Whether the router considers a backend healthy."
        );
        let _ = writeln!(w, "# TYPE gps_backend_up gauge");
        for b in &self.backends {
            let up = u8::from(b.health() != Health::Down);
            let _ = writeln!(w, "gps_backend_up{{backend=\"{}\"}} {up}", b.addr);
        }
        let _ = writeln!(
            w,
            "# HELP gps_backend_forwarded_total Requests each backend answered."
        );
        let _ = writeln!(w, "# TYPE gps_backend_forwarded_total counter");
        for b in &self.backends {
            let _ = writeln!(
                w,
                "gps_backend_forwarded_total{{backend=\"{}\"}} {}",
                b.addr,
                b.forwarded.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            w,
            "# HELP gps_backend_errors_total Failed attempts against each backend."
        );
        let _ = writeln!(w, "# TYPE gps_backend_errors_total counter");
        for b in &self.backends {
            let _ = writeln!(
                w,
                "gps_backend_errors_total{{backend=\"{}\"}} {}",
                b.addr,
                b.errors.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            w,
            "# HELP gps_router_draining Whether the router is draining."
        );
        let _ = writeln!(w, "# TYPE gps_router_draining gauge");
        let _ = writeln!(w, "gps_router_draining {}", u8::from(self.is_draining()));
        w
    }
}

/// Why a routed call could not be answered with a ranking.
enum RouteError {
    /// Every eligible backend failed or was unavailable — answered as
    /// the explicit `overloaded` error.
    Overloaded,
    /// A backend understood the request and said no; forwarded verbatim.
    Server(String),
}

impl RouteError {
    fn message(self) -> String {
        match self {
            RouteError::Overloaded => OVERLOADED.to_string(),
            RouteError::Server(message) => message,
        }
    }
}

/// Per-connection pool of lazily connected backend clients. A client
/// that errors is dropped (never reused — the stream position is
/// untrustworthy) and reconnected on the next call.
struct BackendPool {
    clients: Vec<Option<Client>>,
}

impl BackendPool {
    fn new(n: usize) -> BackendPool {
        BackendPool {
            clients: (0..n).map(|_| None).collect(),
        }
    }
}

/// One attempt against backend `idx` through the pool: connect if
/// needed, run `call`, classify the outcome. On success the backend is
/// marked up; on a transport/protocol failure the client is dropped and
/// the backend penalized. `Err(Some(msg))` is a deterministic server
/// error (do not retry); `Err(None)` is a failed attempt (retry
/// elsewhere).
fn attempt<T>(
    core: &Core,
    slot: &mut Option<Client>,
    idx: usize,
    call: impl FnOnce(&mut Client) -> io::Result<T>,
) -> Result<T, Option<String>> {
    let backend = &core.backends[idx];
    if slot.is_none() {
        match Client::connect_config(backend.addr.as_str(), &core.backend_client_config()) {
            Ok(client) => *slot = Some(client),
            Err(_) => {
                backend.record_failure();
                return Err(None);
            }
        }
    }
    let client = slot.as_mut().expect("client just ensured");
    match call(client) {
        Ok(value) => {
            backend.record_ok();
            backend.forwarded.fetch_add(1, Ordering::Relaxed);
            Ok(value)
        }
        Err(e) => {
            *slot = None; // never reuse a stream that failed mid-call
            match ClientError::from_io(e) {
                // An application error is an *answer*: the backend is
                // healthy, the reply deterministic — forward it.
                ClientError::Server(message) => {
                    backend.record_ok();
                    Err(Some(message))
                }
                // Timeouts, resets, and garbage frames alike: penalize
                // and let the caller try another backend.
                ClientError::Retryable(_) | ClientError::Fatal(_) => {
                    backend.record_failure();
                    Err(None)
                }
            }
        }
    }
}

/// The backend order for a query owned by `owner`: the owner first, then
/// the rest round-robin — the deterministic alternate list retries walk.
fn candidates(owner: usize, n: usize) -> impl Iterator<Item = usize> {
    (0..n).map(move |i| (owner + i) % n)
}

/// Route one single-query predict: the owner first, then up to
/// `max_retries` alternates, skipping backends in backoff.
fn route_single(
    core: &Core,
    pool: &mut BackendPool,
    model: Option<&str>,
    query: &Query,
) -> Result<Ranked, RouteError> {
    let owner = core.owner_of(query.ip);
    let mut attempts = 0usize;
    let budget = core.config.max_retries + 1;
    for idx in candidates(owner, core.backends.len()) {
        if attempts >= budget {
            break;
        }
        if !core.backends[idx].available() {
            continue;
        }
        if attempts > 0 {
            core.retries.fetch_add(1, Ordering::Relaxed);
        }
        attempts += 1;
        match attempt(core, &mut pool.clients[idx], idx, |c| {
            c.predict_on(model, query)
        }) {
            Ok(ranking) => return Ok(ranking),
            Err(Some(message)) => return Err(RouteError::Server(message)),
            Err(None) => continue,
        }
    }
    core.shed.fetch_add(1, Ordering::Relaxed);
    Err(RouteError::Overloaded)
}

/// Route one batch: partition by owner, fan the sub-batches out
/// concurrently (one thread per owning backend), then retry any failed
/// group sequentially on its alternates. Answers return in request
/// order; a group that exhausts retries fails the whole frame.
fn route_batch(
    core: &Core,
    pool: &mut BackendPool,
    model: Option<&str>,
    queries: &[Query],
) -> Result<Vec<Ranked>, RouteError> {
    let n = core.backends.len();
    let mut groups: HashMap<usize, (Vec<usize>, Vec<Query>)> = HashMap::new();
    for (idx, query) in queries.iter().enumerate() {
        let owner = core.owner_of(query.ip);
        let group = groups.entry(owner).or_default();
        group.0.push(idx);
        group.1.push(query.clone());
    }
    let mut results: Vec<Option<Ranked>> = vec![None; queries.len()];
    // First pass: every group against its owner, concurrently. Each
    // group borrows its owner's pool slot — owners are distinct by
    // construction, so the mutable borrows are disjoint.
    let mut failed: Vec<(usize, Vec<usize>, Vec<Query>)> = Vec::new();
    {
        /// One fanned-out group's result: original indices, the queries
        /// (kept for the retry pass), the owner, and the attempt outcome.
        type GroupOutcome = (
            Vec<usize>,
            Vec<Query>,
            usize,
            Result<Vec<Ranked>, Option<String>>,
        );
        let mut slots: HashMap<usize, &mut Option<Client>> =
            pool.clients.iter_mut().enumerate().collect();
        let mut outcomes: Vec<GroupOutcome> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (owner, (indices, group_queries)) in groups {
                let slot = slots.remove(&owner).expect("distinct owners");
                let core = &core;
                handles.push(scope.spawn(move || {
                    let outcome = if core.backends[owner].available() {
                        attempt(core, slot, owner, |c| {
                            c.predict_batch_on(model, &group_queries)
                        })
                    } else {
                        Err(None)
                    };
                    (indices, group_queries, owner, outcome)
                }));
            }
            for handle in handles {
                outcomes.push(handle.join().expect("batch fan-out thread"));
            }
        });
        for (indices, group_queries, owner, outcome) in outcomes {
            match outcome {
                Ok(rankings) if rankings.len() == indices.len() => {
                    for (slot_idx, ranking) in indices.iter().zip(rankings) {
                        results[*slot_idx] = Some(ranking);
                    }
                }
                Ok(_) => {
                    // A short reply is protocol breakage; retry the group.
                    failed.push((owner, indices, group_queries));
                }
                Err(Some(message)) => return Err(RouteError::Server(message)),
                Err(None) => failed.push((owner, indices, group_queries)),
            }
        }
    }
    // Retry pass: each failed group walks its alternates in order.
    for (owner, indices, group_queries) in failed {
        let mut answered = false;
        let mut attempts = 0usize;
        for idx in candidates(owner, n).skip(1) {
            if attempts >= core.config.max_retries {
                break;
            }
            if !core.backends[idx].available() {
                continue;
            }
            attempts += 1;
            core.retries.fetch_add(1, Ordering::Relaxed);
            match attempt(core, &mut pool.clients[idx], idx, |c| {
                c.predict_batch_on(model, &group_queries)
            }) {
                Ok(rankings) if rankings.len() == indices.len() => {
                    for (slot_idx, ranking) in indices.iter().zip(rankings) {
                        results[*slot_idx] = Some(ranking);
                    }
                    answered = true;
                    break;
                }
                Ok(_) | Err(None) => continue,
                Err(Some(message)) => return Err(RouteError::Server(message)),
            }
        }
        if !answered {
            core.shed.fetch_add(1, Ordering::Relaxed);
            return Err(RouteError::Overloaded);
        }
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every query answered or frame errored"))
        .collect())
}

/// Handle one admin-shaped JSON command against the router itself.
/// Returns `None` for commands the router does not implement.
fn admin_response(core: &Core, pool: &mut BackendPool, cmd: &str) -> Option<Json> {
    match cmd {
        "ping" => {
            let mut json = ok_response();
            json.set("pong", true);
            Some(json)
        }
        "stats" => {
            let mut json = ok_response();
            json.set("stats", core.stats_json());
            Some(json)
        }
        "reset-stats" => {
            core.requests.store(0, Ordering::Relaxed);
            core.retries.store(0, Ordering::Relaxed);
            core.shed.store(0, Ordering::Relaxed);
            for b in &core.backends {
                b.forwarded.store(0, Ordering::Relaxed);
                b.errors.store(0, Ordering::Relaxed);
            }
            // Best effort onward: a loadgen phase boundary wants the
            // whole tier zeroed; a dead backend just misses the reset.
            for idx in 0..core.backends.len() {
                let _ = attempt(core, &mut pool.clients[idx], idx, |c| c.reset_stats());
            }
            Some(ok_response())
        }
        "shutdown" => {
            core.begin_drain();
            let mut json = ok_response();
            json.set("draining", true);
            Some(json)
        }
        _ => None,
    }
}

/// Classify-and-answer one JSON-semantics request against the router;
/// the router's analog of the server's `classify_json`.
fn handle_json(
    core: &Core,
    pool: &mut BackendPool,
    text: &str,
    ctx_of: impl Fn(Option<Json>) -> ReplyCtx,
    out: &mut Vec<u8>,
) {
    let request = match Json::parse(text) {
        Ok(json) => json,
        Err(e) => {
            encode_ready(ready_error(ctx_of(None), format!("bad json: {e}")), out);
            return;
        }
    };
    let id = request.get("id").cloned();
    let ctx = ctx_of(id);
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(cmd) => cmd.to_string(),
        None => {
            encode_ready(ready_error(ctx, "missing cmd".to_string()), out);
            return;
        }
    };
    let model = match request.get("model") {
        None => None,
        Some(Json::Str(id)) => Some(id.clone()),
        Some(_) => {
            encode_ready(ready_error(ctx, "model must be a string".to_string()), out);
            return;
        }
    };
    core.requests.fetch_add(1, Ordering::Relaxed);
    match cmd.as_str() {
        "predict" => match query_from_json(&request) {
            Ok(query) => match route_single(core, pool, model.as_deref(), &query) {
                Ok(ranking) => {
                    encode_predict_reply(&ctx, &[Arc::new(ranking)], false, out);
                }
                Err(e) => encode_ready(ready_error(ctx, e.message()), out),
            },
            Err(e) => encode_ready(ready_error(ctx, e), out),
        },
        "batch" => {
            let items = match request.get("queries").and_then(Json::as_arr) {
                Some(items) if items.len() <= MAX_BATCH_QUERIES => items,
                Some(_) => {
                    encode_ready(ready_error(ctx, "batch too large".to_string()), out);
                    return;
                }
                None => {
                    encode_ready(ready_error(ctx, "missing queries".to_string()), out);
                    return;
                }
            };
            let mut queries = Vec::with_capacity(items.len());
            for item in items {
                match query_from_json(item) {
                    Ok(query) => queries.push(query),
                    Err(e) => {
                        encode_ready(ready_error(ctx, e), out);
                        return;
                    }
                }
            }
            match route_batch(core, pool, model.as_deref(), &queries) {
                Ok(rankings) => {
                    let answers: Vec<Arc<Ranked>> = rankings.into_iter().map(Arc::new).collect();
                    encode_predict_reply(&ctx, &answers, true, out);
                }
                Err(e) => encode_ready(ready_error(ctx, e.message()), out),
            }
        }
        other => match admin_response(core, pool, other) {
            Some(response) => encode_ready(ready_of(ctx, response), out),
            None => encode_ready(
                ready_error(ctx, format!("cmd {other:?} is not routed (ask a backend)")),
                out,
            ),
        },
    }
}

/// Wrap a finished JSON response in the right envelope for `ctx`.
fn ready_of(ctx: ReplyCtx, response: Json) -> ReadyReply {
    match ctx {
        ReplyCtx::Json { id } => ReadyReply::Json { response, id },
        ReplyCtx::BinaryAdmin { id } => ReadyReply::BinaryAdmin { response, id },
        ReplyCtx::Http { id, keep_alive } => ReadyReply::Http {
            response,
            id,
            keep_alive,
        },
        // Native binary contexts never reach here (they answer through
        // `encode_predict_reply` or pong/error frames).
        ReplyCtx::Binary { id } => ReadyReply::BinaryError {
            id,
            message: "internal: JSON reply on a binary context".to_string(),
        },
    }
}

/// Serve one accepted front connection until EOF, framing error, or
/// drain. The mirror of the server's `serve_connection`, with routing in
/// place of local predict work.
fn serve_front_connection(core: &Core, stream: TcpStream) -> io::Result<()> {
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut decoder = FrameDecoder::new(MAX_FRAME_BYTES);
    let mut pool = BackendPool::new(core.backends.len());
    let mut out: Vec<u8> = Vec::new();
    loop {
        let payload = match read_frame_payload(&mut reader, &mut decoder) {
            Ok(Some(payload)) => payload,
            result => {
                if !out.is_empty() {
                    let _ = writer.write_all(&out);
                }
                return result.map(|_| ());
            }
        };
        let format = decoder.format().unwrap_or(WireFormat::Json);
        match format {
            WireFormat::Json => match std::str::from_utf8(&payload) {
                Ok(text) => {
                    handle_json(core, &mut pool, text, |id| ReplyCtx::Json { id }, &mut out)
                }
                Err(_) => encode_ready(
                    ReadyReply::Json {
                        response: error_response("bad json: frame is not utf-8"),
                        id: None,
                    },
                    &mut out,
                ),
            },
            WireFormat::Binary => match wire::decode_request(&payload) {
                Err(e) => encode_ready(
                    ReadyReply::BinaryError {
                        id: e.id,
                        message: e.message,
                    },
                    &mut out,
                ),
                Ok(wire::Request::Ping { id }) => {
                    core.requests.fetch_add(1, Ordering::Relaxed);
                    encode_ready(ReadyReply::Pong { id }, &mut out);
                }
                Ok(wire::Request::Predict { id, model, query }) => {
                    core.requests.fetch_add(1, Ordering::Relaxed);
                    let ctx = ReplyCtx::Binary { id };
                    match route_single(core, &mut pool, model.as_deref(), &query) {
                        Ok(ranking) => {
                            encode_predict_reply(&ctx, &[Arc::new(ranking)], false, &mut out)
                        }
                        Err(e) => encode_ready(
                            ReadyReply::BinaryError {
                                id,
                                message: e.message(),
                            },
                            &mut out,
                        ),
                    }
                }
                Ok(wire::Request::Batch { id, model, queries }) => {
                    core.requests.fetch_add(1, Ordering::Relaxed);
                    let ctx = ReplyCtx::Binary { id };
                    match route_batch(core, &mut pool, model.as_deref(), &queries) {
                        Ok(rankings) => {
                            let answers: Vec<Arc<Ranked>> =
                                rankings.into_iter().map(Arc::new).collect();
                            encode_predict_reply(&ctx, &answers, true, &mut out)
                        }
                        Err(e) => encode_ready(
                            ReadyReply::BinaryError {
                                id,
                                message: e.message(),
                            },
                            &mut out,
                        ),
                    }
                }
                Ok(wire::Request::Admin { json }) => {
                    handle_json(
                        core,
                        &mut pool,
                        &json,
                        |id| ReplyCtx::BinaryAdmin { id },
                        &mut out,
                    );
                }
            },
        }
        // Flush replies as on the server: coalesce only while more
        // pipelined requests are already buffered.
        if reader.buffer().is_empty() || out.len() >= 64 * 1024 {
            writer.write_all(&out)?;
            out.clear();
        }
        if core.is_draining() && reader.buffer().is_empty() {
            if !out.is_empty() {
                writer.write_all(&out)?;
            }
            return Ok(());
        }
    }
}

/// Minimal blocking HTTP/1.1 sideline for health checks and metrics —
/// deliberately tiny (request line + headers, no keep-alive): its only
/// clients are probes and `curl`.
fn serve_http_connection(core: &Core, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 16 * 1024 {
            return write_http(&mut stream, 431, "text/plain", "headers too large\n");
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    match (method, path) {
        ("GET", "/healthz") => {
            if core.is_draining() {
                write_http(&mut stream, 503, "text/plain", "draining\n")
            } else {
                write_http(&mut stream, 200, "text/plain", "ok\n")
            }
        }
        ("GET", "/metrics") => write_http(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &core.render_metrics(),
        ),
        ("GET", "/stats") => {
            let mut text = String::new();
            core.stats_json().write(&mut text);
            text.push('\n');
            write_http(&mut stream, 200, "application/json", &text)
        }
        ("POST", "/shutdown") => {
            core.begin_drain();
            write_http(
                &mut stream,
                200,
                "application/json",
                "{\"ok\":true,\"draining\":true}\n",
            )
        }
        (_, "/healthz" | "/metrics" | "/stats" | "/shutdown") => {
            write_http(&mut stream, 405, "text/plain", "method not allowed\n")
        }
        _ => write_http(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn write_http(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// The active health prober: pings every backend each interval over
/// short-deadline connections, driving the same health state passive
/// errors feed. A downed backend's recovery is noticed within one
/// interval of it coming back.
fn probe_loop(core: &Core) {
    let mut clients: Vec<Option<Client>> = (0..core.backends.len()).map(|_| None).collect();
    let config = ClientConfig::timeouts(
        WireFormat::Binary,
        core.config.request_timeout.min(Duration::from_millis(500)),
    );
    while !core.stop.load(Ordering::Acquire) {
        for (idx, backend) in core.backends.iter().enumerate() {
            if clients[idx].is_none() {
                clients[idx] = Client::connect_config(backend.addr.as_str(), &config).ok();
            }
            let ok = match clients[idx].as_mut() {
                None => false,
                Some(client) => client.ping().is_ok(),
            };
            if ok {
                backend.record_ok();
            } else {
                clients[idx] = None;
                backend.record_failure();
            }
        }
        std::thread::sleep(core.config.probe_interval);
    }
}

/// The router process entry point (also embeddable — tests start it
/// in-process).
pub struct Router;

/// A started router: its bound addresses plus drain control. Dropping
/// the handle stops the prober; listener threads run until the process
/// exits (like the server's accept loops).
pub struct RouterHandle {
    core: Arc<Core>,
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
}

impl Router {
    /// Bind `addr` (and optionally `http_addr`) and serve the routing
    /// tier over `config.backends`. Returns once the listeners are
    /// bound; serving happens on background threads.
    pub fn start(
        addr: &str,
        http_addr: Option<&str>,
        config: RouterConfig,
    ) -> io::Result<RouterHandle> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one --backend",
            ));
        }
        let core = Arc::new(Core {
            backends: config
                .backends
                .iter()
                .map(|addr| BackendState::new(addr.clone()))
                .collect(),
            config,
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
        });
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let accept_core = core.clone();
        std::thread::Builder::new()
            .name("gps-route-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if accept_core.is_draining() {
                        accept_core.conns_rejected.fetch_add(1, Ordering::Relaxed);
                        continue; // dropping the stream closes it
                    }
                    accept_core.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    let conn_core = accept_core.clone();
                    std::thread::Builder::new()
                        .name("gps-route-conn".to_string())
                        .spawn(move || {
                            let _ = stream.set_nodelay(true);
                            let _ = serve_front_connection(&conn_core, stream);
                            conn_core.conns_closed.fetch_add(1, Ordering::Relaxed);
                        })
                        .expect("spawn router connection thread");
                }
            })
            .expect("spawn router accept thread");
        let http_bound = match http_addr {
            None => None,
            Some(http_addr) => {
                let http_listener = TcpListener::bind(http_addr)?;
                let bound = http_listener.local_addr()?;
                let http_core = core.clone();
                std::thread::Builder::new()
                    .name("gps-route-http".to_string())
                    .spawn(move || {
                        for stream in http_listener.incoming() {
                            let stream = match stream {
                                Ok(s) => s,
                                Err(_) => continue,
                            };
                            // HTTP stays reachable during drain: health
                            // checkers must see the 503 and operators
                            // the drain finishing in /metrics.
                            let conn_core = http_core.clone();
                            std::thread::Builder::new()
                                .name("gps-route-http-conn".to_string())
                                .spawn(move || {
                                    let _ = serve_http_connection(&conn_core, stream);
                                })
                                .expect("spawn router http thread");
                        }
                    })
                    .expect("spawn router http accept thread");
                Some(bound)
            }
        };
        let probe_core = core.clone();
        std::thread::Builder::new()
            .name("gps-route-probe".to_string())
            .spawn(move || probe_loop(&probe_core))
            .expect("spawn router probe thread");
        Ok(RouterHandle {
            core,
            addr: bound,
            http_addr: http_bound,
        })
    }
}

impl RouterHandle {
    /// The bound frame-protocol address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP sideline address, when one was requested.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Flip the router into drain (same as the `shutdown` command).
    pub fn begin_drain(&self) {
        self.core.begin_drain();
    }

    pub fn is_draining(&self) -> bool {
        self.core.is_draining()
    }

    /// Front connections currently open.
    pub fn active_conns(&self) -> u64 {
        self.core
            .conns_accepted
            .load(Ordering::Relaxed)
            .saturating_sub(self.core.conns_closed.load(Ordering::Relaxed))
    }

    /// Block until every front connection has closed (drain complete) or
    /// `timeout` passes; `true` when fully drained.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.active_conns() == 0 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        self.active_conns() == 0
    }

    /// The router's `stats` payload (what the wire `stats` cmd returns).
    pub fn stats_json(&self) -> Json {
        self.core.stats_json()
    }

    /// Total retried attempts (the `gps_retries_total` counter).
    pub fn retries_total(&self) -> u64 {
        self.core.retries.load(Ordering::Relaxed)
    }

    /// Total shed queries (the `gps_shed_total` counter).
    pub fn shed_total(&self) -> u64 {
        self.core.shed.load(Ordering::Relaxed)
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.core.stop.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_types::Ip;

    fn test_core(addrs: &[&str]) -> Core {
        Core {
            backends: addrs
                .iter()
                .map(|a| BackendState::new(a.to_string()))
                .collect(),
            config: RouterConfig {
                backends: addrs.iter().map(|a| a.to_string()).collect(),
                ..RouterConfig::default()
            },
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
        }
    }

    #[test]
    fn owner_is_stable_and_subnet_aligned() {
        let core = test_core(&["a:1", "b:2", "c:3"]);
        for ip in [Ip::from_octets(10, 7, 3, 4), Ip::from_octets(198, 51, 0, 1)] {
            let owner = core.owner_of(ip);
            // Every IP of one /16 routes to the same backend.
            assert_eq!(owner, core.owner_of(Ip(ip.0 ^ 0xFFFF)));
            assert!(owner < 3);
        }
        // Different /16s spread (Fibonacci hashing): at least two owners
        // across a handful of subnets.
        let owners: std::collections::HashSet<usize> =
            (0u32..8).map(|n| core.owner_of(Ip(n << 16 | 1))).collect();
        assert!(owners.len() > 1);
    }

    #[test]
    fn health_walks_up_suspect_down_and_backs_off() {
        let b = BackendState::new("127.0.0.1:9".to_string());
        assert_eq!(b.health(), Health::Up);
        assert!(b.available());
        b.record_failure();
        assert_eq!(b.health(), Health::Suspect);
        assert!(b.available(), "one failure still routes");
        b.record_failure();
        assert_eq!(b.health(), Health::Down);
        assert!(!b.available(), "down enters backoff");
        assert_eq!(b.errors.load(Ordering::Relaxed), 2);
        b.record_ok();
        assert_eq!(b.health(), Health::Up);
        assert!(b.available());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = BackendState::new("127.0.0.1:9".to_string());
        let mut last = Duration::ZERO;
        for _ in 0..12 {
            b.record_failure();
        }
        {
            let meta = b.meta.lock().unwrap();
            if let Some(until) = meta.down_until {
                last = until.saturating_duration_since(Instant::now());
            }
        }
        // Cap plus at most 25% jitter.
        assert!(last <= BACKOFF_CAP + BACKOFF_CAP / 4 + Duration::from_millis(50));
        assert!(last >= BACKOFF_BASE);
    }

    #[test]
    fn half_open_after_backoff_expires() {
        let b = BackendState::new("127.0.0.1:9".to_string());
        b.record_failure();
        b.record_failure();
        assert!(!b.available());
        // Force the deadline into the past.
        b.meta.lock().unwrap().down_until = Some(Instant::now() - Duration::from_millis(1));
        assert!(b.available(), "expired backoff allows a half-open try");
        assert_eq!(b.health(), Health::Down, "still down until a success");
    }

    #[test]
    fn candidates_start_at_owner_and_wrap() {
        let order: Vec<usize> = candidates(2, 4).collect();
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn route_single_sheds_when_everything_is_down() {
        let core = test_core(&["127.0.0.1:1", "127.0.0.1:1"]);
        for b in &core.backends {
            b.record_failure();
            b.record_failure();
        }
        let mut pool = BackendPool::new(2);
        let query = Query::new(Ip::from_octets(10, 0, 0, 1));
        match route_single(&core, &mut pool, None, &query) {
            Err(RouteError::Overloaded) => {}
            _ => panic!("expected overloaded"),
        }
        assert_eq!(core.shed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_json_carries_loadgen_keys_and_router_section() {
        let core = test_core(&["x:1"]);
        core.requests.store(5, Ordering::Relaxed);
        core.conns_accepted.store(3, Ordering::Relaxed);
        core.conns_closed.store(1, Ordering::Relaxed);
        let json = core.stats_json();
        assert_eq!(json.get("requests").and_then(Json::as_u64), Some(5));
        assert_eq!(json.get("conns_active").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("conns_rejected").and_then(Json::as_u64), Some(0));
        let router = json.get("router").expect("router section");
        assert_eq!(router.get("retries_total").and_then(Json::as_u64), Some(0));
        let backends = router.get("backends").and_then(Json::as_arr).unwrap();
        assert_eq!(backends.len(), 1);
        assert_eq!(backends[0].get("health").and_then(Json::as_str), Some("up"));
    }

    #[test]
    fn metrics_exposition_has_the_contract_series() {
        let core = test_core(&["b0:1", "b1:2"]);
        core.backends[1].record_failure();
        core.backends[1].record_failure();
        let text = core.render_metrics();
        assert!(text.contains("gps_retries_total 0"));
        assert!(text.contains("gps_shed_total 0"));
        assert!(text.contains("gps_backend_up{backend=\"b0:1\"} 1"));
        assert!(text.contains("gps_backend_up{backend=\"b1:2\"} 0"));
        assert!(text.contains("gps_router_draining 0"));
    }
}
