//! # gps-serve
//!
//! The prediction-serving subsystem: GPS's trained artifacts, persisted by
//! `gps-core`'s [`snapshot`](gps_core::snapshot) layer, loaded behind a
//! long-lived sharded server that answers "which ports should I probe on
//! this IP?" queries at wire speed.
//!
//! The paper's pitch is that the conditional-probability model makes
//! all-port discovery cheap to *compute* (13 minutes on a parallel engine,
//! §6.5); an LZR-style deployment then needs those predictions *on
//! demand*, per target, for as long as the model stays fresh. This crate
//! is that missing half:
//!
//! - [`artifact`] — [`ServableModel`]: a loaded snapshot in query form
//!   (cold queries rank §5.3 priors by subnet; warm queries expand
//!   observed ports through the §5.4 rules);
//! - [`server`] — [`PredictionServer`]: a *registry* of named models
//!   (one per scan universe/day — compare quick vs full or LZR-filtered
//!   vs raw from one process) behind N shard worker threads
//!   (hash-partitioned by the query IP's /16), bounded work queues,
//!   opportunistic request batching, per-shard LRU answer caches keyed by
//!   (model, generation, subnet, evidence), [`ServerStats`] counters with
//!   a per-model breakdown, and zero-downtime snapshot hot-reload
//!   (epoch-published models + the [`watch_snapshot_file`] control path
//!   covering every registered snapshot file);
//! - [`cache`] — the O(1) LRU used by each shard;
//! - [`proto`] — a length-prefixed JSON frame protocol over TCP plus the
//!   blocking [`Client`] used by `gps query` and the loadgen bench;
//! - [`transport`] / [`net`] — how connections are driven: one thread
//!   per connection (default) or the event-driven multiplexed transport
//!   (`--transport events`: epoll/poll readiness loops, incremental
//!   frame decoding, shard completion queues) for C10K-scale fan-in,
//!   both behind the same request core and both honoring `--max-conns`
//!   and `--idle-timeout`.
//!
//! ## Quick start
//!
//! ```
//! use gps_serve::{PredictionServer, Query, ServableModel, ServeConfig};
//! use gps_core::{censys_dataset, run_gps, GpsConfig, ModelSnapshot};
//! use gps_synthnet::{Internet, UniverseConfig};
//!
//! // Train on a tiny universe and package the artifacts.
//! let net = Internet::generate(&UniverseConfig::tiny(7));
//! let dataset = censys_dataset(&net, 100, 0.05, 0, 1);
//! let config = GpsConfig { seed_fraction: 0.05, step_prefix: 20, ..GpsConfig::default() };
//! let run = run_gps(&net, &dataset, &config);
//! let snapshot = ModelSnapshot::from_run(&run, &config, 7);
//!
//! // Serve it.
//! let server = PredictionServer::start(
//!     ServableModel::from_snapshot(snapshot),
//!     ServeConfig { shards: 2, ..ServeConfig::default() },
//! );
//! let ip = gps_types::Ip(net.host_ips()[0]);
//! let ranked = server.predict(Query::new(ip));
//! println!("predicted {} candidate ports for {ip}", ranked.len());
//! ```

pub mod artifact;
pub mod cache;
pub mod hist;
pub mod net;
pub mod proto;
pub mod query_log;
pub mod router;
pub mod server;
mod shard;
pub mod transport;
mod wire;

pub use artifact::{PredictScratch, Query, Ranked, ReferenceModel, ServableModel};
pub use cache::LruCache;
pub use hist::{EndpointLabel, HistogramSet, LatencyHistogram, WireLabel};
pub use net::{DecodeError, FrameDecoder, WireFormat};
pub use proto::{serve_tcp, Client, ClientConfig, ClientError, ReloadOutcome};
pub use query_log::QueryLog;
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{
    validate_model_id, watch_snapshot_file, ModelStatsSnapshot, PredictionServer, ReloadWatcher,
    ServeConfig, ServerStats, StatsSnapshot, DEFAULT_MODEL_ID, MAX_MODEL_ID_LEN,
};
pub use transport::{serve, serve_with_http, Transport, TransportConfig};
