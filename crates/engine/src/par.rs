//! Chunked parallel fold/reduce over slices.
//!
//! The engine's unit of parallelism is the *chunk*: the input slice is split
//! into roughly equal contiguous chunks, each worker folds its chunks into a
//! thread-local accumulator, and accumulators are reduced on the calling
//! thread. This is exactly the shape of GPS's model computation (per-host
//! pair counting is embarrassingly parallel, merging counters is cheap
//! relative to generating them) and mirrors how BigQuery shards the self-join
//! in §5.5.
//!
//! CPU-bound work belongs on plain threads, not an async runtime, so workers
//! are crossbeam *scoped* threads: they may borrow the input slice and no
//! `'static` bound or `Arc` cloning is needed.

/// Number of workers to use when the caller asks for auto-detection.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Fold `items` in parallel and reduce the per-worker accumulators.
///
/// * `workers` — thread count; `<= 1` runs inline on the calling thread (the
///   `SingleCore` backend path), guaranteeing identical results because fold
///   then reduce is associative by contract.
/// * `fold` — called per item with the worker-local accumulator.
/// * `reduce` — merges two accumulators; must be associative and agree with
///   `fold` about ordering-insensitivity (all engine uses are counter merges,
///   which commute).
pub fn par_fold_reduce<T, Acc, F, R>(
    items: &[T],
    workers: usize,
    make_acc: impl Fn() -> Acc + Sync,
    fold: F,
    reduce: R,
) -> Acc
where
    T: Sync,
    Acc: Send,
    F: Fn(&mut Acc, &T) + Sync,
    R: Fn(Acc, Acc) -> Acc,
{
    if workers <= 1 || items.len() < 2 {
        let mut acc = make_acc();
        for item in items {
            fold(&mut acc, item);
        }
        return acc;
    }

    let workers = workers.min(items.len());
    let chunk_size = items.len().div_ceil(workers);

    // Capture the closures by shared reference (they are `Sync`): a plain
    // `move` closure would try to move them into the first worker.
    let make_acc = &make_acc;
    let fold = &fold;
    let accs: Vec<Acc> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move |_| {
                    let mut acc = make_acc();
                    for item in chunk {
                        fold(&mut acc, item);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    })
    .expect("engine scope panicked");

    let mut iter = accs.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, reduce)
}

/// Parallel map over a slice, preserving order.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if workers <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let workers = workers.min(items.len());
    let chunk_size = items.len().div_ceil(workers);

    let f = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move |_| chunk.iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("engine worker panicked"));
        }
        out
    })
    .expect("engine scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: u64 = items.iter().sum();
        for workers in [1, 2, 3, 8, 64] {
            let got = par_fold_reduce(&items, workers, || 0u64, |acc, x| *acc += *x, |a, b| a + b);
            assert_eq!(got, seq, "workers={workers}");
        }
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        let got = par_fold_reduce(&items, 8, || 7u64, |_, _| (), |a, _| a);
        assert_eq!(got, 7);
        assert!(par_map(&items, 8, |x: &u64| *x).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let got = par_fold_reduce(&[5u64], 8, || 0, |acc, x| *acc += x, |a, b| a + b);
        assert_eq!(got, 5);
    }

    #[test]
    fn more_workers_than_items() {
        let items = [1u64, 2, 3];
        let got = par_fold_reduce(&items, 100, || 0, |acc, x| *acc += x, |a, b| a + b);
        assert_eq!(got, 6);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        for workers in [1, 2, 7, 16] {
            let got = par_map(&items, workers, |x| x * 2);
            let want: Vec<u32> = items.iter().map(|x| x * 2).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn hashmap_merge_is_backend_invariant() {
        use std::collections::HashMap;
        let items: Vec<u32> = (0..5000).map(|i| i % 37).collect();
        let count = |workers| {
            par_fold_reduce(
                &items,
                workers,
                HashMap::<u32, u64>::new,
                |acc, x| *acc.entry(*x).or_default() += 1,
                |mut a, b| {
                    for (k, v) in b {
                        *a.entry(k).or_default() += v;
                    }
                    a
                },
            )
        };
        let single = count(1);
        let parallel = count(8);
        assert_eq!(single, parallel);
        assert_eq!(single.values().sum::<u64>(), 5000);
    }
}
