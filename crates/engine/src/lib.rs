//! # gps-engine
//!
//! A small columnar dataflow engine that plays the role Google BigQuery plays
//! in the paper's implementation (§5.5): GPS's conditional-probability model
//! is "reading data, aggregating, and joining among shared data fields", and
//! the paper's headline systems result (§6.5, Table 2) is that the *same*
//! computation runs in 9 days on one core but 13 minutes on a massively
//! parallel engine.
//!
//! This crate provides both execution backends behind one API:
//!
//! - [`Backend::SingleCore`] — straight-line fold, no threads;
//! - [`Backend::Parallel`] — crossbeam scoped worker threads with
//!   shard-merged hash aggregation.
//!
//! plus the primitives GPS's queries decompose into:
//!
//! - [`par`] — chunked fold/reduce over slices;
//! - [`groupby`] — grouped counting and folding;
//! - [`join`] — within-group pair enumeration (the "JOIN the dataset on
//!   itself" step that computes the pairwise co-occurrence matrix);
//! - [`ledger`] — rows/bytes-processed accounting and the $/TB cost model
//!   used to reproduce Table 2's cost column.

pub mod groupby;
pub mod join;
pub mod ledger;
pub mod par;

pub use groupby::{group_count, group_fold};
pub use join::ordered_pairs_within_groups;
pub use ledger::{CostModel, ExecLedger};
pub use par::{available_workers, par_fold_reduce};

/// Execution backend selector.
///
/// Everything in this crate (and the model builder in `gps-core`) produces
/// identical results under either backend; only wall-clock and the ledger's
/// worker count differ. This is asserted by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Sequential execution on the calling thread.
    SingleCore,
    /// Parallel execution over `workers` threads (0 = auto-detect).
    Parallel { workers: usize },
}

impl Backend {
    /// Resolve the actual worker count (1 for single-core, detected for
    /// `Parallel { workers: 0 }`).
    pub fn workers(self) -> usize {
        match self {
            Backend::SingleCore => 1,
            Backend::Parallel { workers: 0 } => available_workers(),
            Backend::Parallel { workers } => workers,
        }
    }

    /// Convenience: auto-sized parallel backend.
    pub fn parallel() -> Backend {
        Backend::Parallel { workers: 0 }
    }
}

impl Default for Backend {
    fn default() -> Self {
        Self::parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_resolution() {
        assert_eq!(Backend::SingleCore.workers(), 1);
        assert!(Backend::parallel().workers() >= 1);
        assert_eq!(Backend::Parallel { workers: 3 }.workers(), 3);
    }
}
