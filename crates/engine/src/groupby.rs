//! Grouped aggregation: the engine's `GROUP BY key` operator.
//!
//! GPS's probabilistic model is, at bottom, two giant grouped counts
//! (§5.2/§5.5):
//!
//! - the denominator of every conditional probability: *how many hosts
//!   exhibit feature-tuple K*;
//! - the numerator: *how many hosts exhibit feature-tuple K and also respond
//!   on port a* — the "pairwise co-occurrence matrix".
//!
//! Both are `group_count` calls here. Aggregation is fold/reduce of
//! `HashMap`s so the parallel and single-core backends produce identical
//! maps.

use std::collections::HashMap;
use std::hash::Hash;

use crate::ledger::ExecLedger;
use crate::par::par_fold_reduce;
use crate::Backend;

/// Count occurrences of each key emitted by `emit` over `items`.
///
/// `emit` may emit zero or more keys per item (it receives a sink closure);
/// this matches the model builder, where one host emits one key per
/// (service-pair × feature) combination.
pub fn group_count<T, K, E>(
    items: &[T],
    backend: Backend,
    ledger: &ExecLedger,
    emit: E,
) -> HashMap<K, u64>
where
    T: Sync,
    K: Eq + Hash + Send,
    E: Fn(&T, &mut dyn FnMut(K)) + Sync,
{
    group_fold(
        items,
        backend,
        ledger,
        |item, sink| emit(item, &mut |k| sink(k, ())),
        || 0u64,
        |acc, ()| *acc += 1,
        |a, b| *a += b,
    )
}

/// Fold items into per-key accumulators.
///
/// `emit` emits `(key, value)` pairs; `fold` merges a value into the key's
/// accumulator; `merge` combines accumulators from different workers.
pub fn group_fold<T, K, V, A, E, F, M>(
    items: &[T],
    backend: Backend,
    ledger: &ExecLedger,
    emit: E,
    init: impl Fn() -> A + Sync,
    fold: F,
    merge: M,
) -> HashMap<K, A>
where
    T: Sync,
    K: Eq + Hash + Send,
    A: Send,
    E: Fn(&T, &mut dyn FnMut(K, V)) + Sync,
    F: Fn(&mut A, V) + Sync,
    M: Fn(&mut A, A) + Sync,
{
    ledger.record_rows(items.len() as u64, std::mem::size_of::<T>() as u64);
    par_fold_reduce(
        items,
        backend.workers(),
        HashMap::<K, A>::new,
        |acc, item| {
            emit(item, &mut |k, v| {
                let slot = acc.entry(k).or_insert_with(&init);
                fold(slot, v);
            });
        },
        |mut a, b| {
            for (k, v) in b {
                match a.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut o) => merge(o.get_mut(), v),
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(v);
                    }
                }
            }
            a
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ledger() -> ExecLedger {
        ExecLedger::new()
    }

    #[test]
    fn group_fold_counts_match_both_backends() {
        let items: Vec<u32> = (0..10_000).collect();
        let run = |backend| {
            group_fold(
                &items,
                backend,
                &test_ledger(),
                |x, sink| sink(*x % 7, 1u64),
                || 0u64,
                |acc, v| *acc += v,
                |a, b| *a += b,
            )
        };
        let single = run(Backend::SingleCore);
        let par = run(Backend::Parallel { workers: 8 });
        assert_eq!(single, par);
        assert_eq!(single.len(), 7);
        assert_eq!(single.values().sum::<u64>(), 10_000);
    }

    #[test]
    fn group_fold_multi_emit() {
        // Each item emits two keys — the model emits many keys per host.
        let items: Vec<u32> = (0..100).collect();
        let got = group_fold(
            &items,
            Backend::SingleCore,
            &test_ledger(),
            |x, sink| {
                sink(("even", *x % 2 == 0), 1u64);
                sink(("big", *x >= 50), 1u64);
            },
            || 0u64,
            |acc, v| *acc += v,
            |a, b| *a += b,
        );
        assert_eq!(got[&("even", true)], 50);
        assert_eq!(got[&("big", true)], 50);
        assert_eq!(got.values().sum::<u64>(), 200);
    }

    #[test]
    fn group_fold_set_accumulators() {
        use std::collections::HashSet;
        // Distinct-count style aggregation (used for Table 1 dimensionality).
        let items: Vec<(u8, u32)> = vec![(1, 10), (1, 10), (1, 11), (2, 10), (2, 10), (2, 10)];
        let got = group_fold(
            &items,
            Backend::Parallel { workers: 4 },
            &test_ledger(),
            |(k, v), sink| sink(*k, *v),
            HashSet::<u32>::new,
            |acc, v| {
                acc.insert(v);
            },
            |a, b| a.extend(b),
        );
        assert_eq!(got[&1].len(), 2);
        assert_eq!(got[&2].len(), 1);
    }

    #[test]
    fn group_count_agrees_with_manual_count() {
        let items: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let got = group_count(
            &items,
            Backend::Parallel { workers: 3 },
            &test_ledger(),
            |x, sink| sink(*x),
        );
        assert_eq!(got[&5], 3);
        assert_eq!(got[&1], 2);
        assert_eq!(got[&9], 1);
        assert_eq!(got.values().sum::<u64>(), items.len() as u64);
    }

    #[test]
    fn ledger_records_row_volume() {
        let ledger = test_ledger();
        let items: Vec<u64> = (0..128).collect();
        let _ = group_fold(
            &items,
            Backend::SingleCore,
            &ledger,
            |x, sink| sink(*x, ()),
            || (),
            |_, _| {},
            |_, _| {},
        );
        assert_eq!(ledger.rows_processed(), 128);
        assert_eq!(ledger.bytes_processed(), 128 * 8);
    }
}
