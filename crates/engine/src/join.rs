//! Within-group pair enumeration — the engine's self-join operator.
//!
//! §5.5: *"GPS uses BigQuery's SQL language to compute the pairwise
//! co-occurrence matrix for every feature and port, which involves JOIN-ing
//! the dataset on itself to find all pairwise combinations of features"*.
//!
//! A self-join on the IP column followed by a `port_a != port_b` filter is,
//! when rows arrive grouped by IP, simply enumerating ordered pairs of
//! services within each host. That grouping is how `gps-core` stores seed
//! sets, so the join costs no hashing at all — but it is also why the paper
//! notes the memory blow-up: a host with *k* services emits *k·(k−1)*
//! ordered pairs.

use crate::ledger::ExecLedger;
use crate::par::par_fold_reduce;
use crate::Backend;

/// Enumerate ordered (left, right) index pairs within each group and fold
/// the emitted values.
///
/// * `groups` — one entry per group (e.g. one host's services).
/// * `row_count` — returns the number of rows in a group.
/// * `emit` — called for every ordered pair `(i, j)`, `i != j`, with a sink;
///   whatever it emits is folded with `fold`/`merge` like
///   [`crate::groupby::group_fold`].
///
/// Returns the merged accumulator.
pub fn ordered_pairs_within_groups<G, Acc, E>(
    groups: &[G],
    backend: Backend,
    ledger: &ExecLedger,
    row_count: impl Fn(&G) -> usize + Sync,
    make_acc: impl Fn() -> Acc + Sync,
    emit: E,
    merge: impl Fn(Acc, Acc) -> Acc,
) -> Acc
where
    G: Sync,
    Acc: Send,
    E: Fn(&mut Acc, &G, usize, usize) + Sync,
{
    // Rows processed = Σ k²-ish pair volume; record actual pair count so the
    // ledger reflects the join blow-up the paper discusses in §6.5 (Space).
    let pair_volume: u64 = groups
        .iter()
        .map(|g| {
            let k = row_count(g) as u64;
            k.saturating_mul(k.saturating_sub(1))
        })
        .sum();
    ledger.record_rows(pair_volume, std::mem::size_of::<(u32, u16, u16)>() as u64);

    par_fold_reduce(
        groups,
        backend.workers(),
        make_acc,
        |acc, group| {
            let k = row_count(group);
            for i in 0..k {
                for j in 0..k {
                    if i != j {
                        emit(acc, group, i, j);
                    }
                }
            }
        },
        merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A toy "host": a list of open ports.
    type Host = Vec<u16>;

    fn cooccurrence(groups: &[Host], backend: Backend) -> HashMap<(u16, u16), u64> {
        ordered_pairs_within_groups(
            groups,
            backend,
            &ExecLedger::new(),
            |g| g.len(),
            HashMap::new,
            |acc, g, i, j| {
                *acc.entry((g[i], g[j])).or_default() += 1;
            },
            |mut a, b| {
                for (k, v) in b {
                    *a.entry(k).or_default() += v;
                }
                a
            },
        )
    }

    #[test]
    fn pair_counts_small_example() {
        // Two hosts: {80, 443}, {80, 443, 22}.
        let groups = vec![vec![80, 443], vec![80, 443, 22]];
        let m = cooccurrence(&groups, Backend::SingleCore);
        assert_eq!(m[&(80, 443)], 2, "both hosts have 80→443");
        assert_eq!(m[&(443, 80)], 2);
        assert_eq!(m[&(22, 80)], 1);
        assert_eq!(m.get(&(80, 80)), None, "no self pairs");
        // Total ordered pairs: 2·1 + 3·2 = 8.
        assert_eq!(m.values().sum::<u64>(), 8);
    }

    #[test]
    fn backends_agree() {
        let groups: Vec<Host> = (0..500)
            .map(|i| (0..(i % 5) + 1).map(|p| (p * 7 + i % 13) as u16).collect())
            .collect();
        let a = cooccurrence(&groups, Backend::SingleCore);
        let b = cooccurrence(&groups, Backend::Parallel { workers: 8 });
        assert_eq!(a, b);
    }

    #[test]
    fn single_service_hosts_emit_nothing() {
        let groups = vec![vec![80], vec![22]];
        let m = cooccurrence(&groups, Backend::SingleCore);
        assert!(m.is_empty());
    }

    #[test]
    fn ledger_counts_join_blowup() {
        let ledger = ExecLedger::new();
        let groups = vec![vec![1u16, 2, 3, 4]]; // k=4 → 12 ordered pairs
        let _ = ordered_pairs_within_groups(
            &groups,
            Backend::SingleCore,
            &ledger,
            |g| g.len(),
            || 0u64,
            |acc, _, _, _| *acc += 1,
            |a, b| a + b,
        );
        assert_eq!(ledger.rows_processed(), 12);
    }
}
