//! Execution accounting: rows/bytes processed and dollar cost.
//!
//! Table 2 of the paper reports, per pipeline stage, the *data
//! processed/shuffled* (4 TB for Predicting-First-Service, 2.5 TB for
//! Predicting-Remaining-Services) and the BigQuery cost (13¢ + 62¢ = 75¢
//! total at on-demand pricing). The engine ledger captures the analogous
//! quantities for our simulated runs so the `tab2` experiment can print the
//! same columns.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Thread-safe accumulator of engine work. Shared by reference into the
/// parallel kernels (all counters are relaxed atomics — totals only).
#[derive(Debug, Default)]
pub struct ExecLedger {
    rows: AtomicU64,
    bytes: AtomicU64,
    queries: AtomicU64,
}

impl ExecLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a kernel pass over `rows` rows of `row_bytes` bytes each.
    pub fn record_rows(&self, rows: u64, row_bytes: u64) {
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.bytes
            .fetch_add(rows.saturating_mul(row_bytes), Ordering::Relaxed);
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn rows_processed(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    pub fn bytes_processed(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of kernel invocations ("queries").
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Fold another ledger's totals into this one.
    pub fn absorb(&self, other: &ExecLedger) {
        self.rows
            .fetch_add(other.rows_processed(), Ordering::Relaxed);
        self.bytes
            .fetch_add(other.bytes_processed(), Ordering::Relaxed);
        self.queries.fetch_add(other.queries(), Ordering::Relaxed);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.rows.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.queries.store(0, Ordering::Relaxed);
    }
}

/// Serverless-pricing cost model (BigQuery on-demand analog).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Dollars per terabyte of data processed. BigQuery's on-demand price at
    /// the time of the paper was $5/TB, which is what makes GPS's total come
    /// to 75¢.
    pub dollars_per_tb: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dollars_per_tb: 5.0,
        }
    }
}

impl CostModel {
    pub fn cost_dollars(&self, bytes: u64) -> f64 {
        bytes as f64 / 1e12 * self.dollars_per_tb
    }

    /// Cost in cents, as Table 2 prints it.
    pub fn cost_cents(&self, bytes: u64) -> f64 {
        self.cost_dollars(bytes) * 100.0
    }
}

/// Simple wall-clock stopwatch for stage timing (Table 2's wall-clock
/// column for the computational stages).
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let l = ExecLedger::new();
        l.record_rows(10, 8);
        l.record_rows(5, 4);
        assert_eq!(l.rows_processed(), 15);
        assert_eq!(l.bytes_processed(), 100);
        assert_eq!(l.queries(), 2);
    }

    #[test]
    fn absorb_merges() {
        let a = ExecLedger::new();
        let b = ExecLedger::new();
        a.record_rows(1, 1);
        b.record_rows(2, 2);
        a.absorb(&b);
        assert_eq!(a.rows_processed(), 3);
        assert_eq!(a.bytes_processed(), 5);
    }

    #[test]
    fn reset_zeroes() {
        let l = ExecLedger::new();
        l.record_rows(7, 7);
        l.reset();
        assert_eq!(l.rows_processed(), 0);
        assert_eq!(l.bytes_processed(), 0);
        assert_eq!(l.queries(), 0);
    }

    #[test]
    fn cost_model_matches_paper_scale() {
        let m = CostModel::default();
        // 6.5 TB at $5/TB ≈ 3.25 dollars... the paper's 75¢ comes from
        // BigQuery billing only some stages; here we just check arithmetic.
        let bytes = 4_000_000_000_000u64; // 4 TB (PFS stage in Table 2)
        assert!((m.cost_dollars(bytes) - 20.0).abs() < 1e-9);
        assert!((m.cost_cents(1_000_000_000_000) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecLedger>();
    }
}
