//! Regenerates the paper's sec7 evaluation artifact. See DESIGN.md §5.

fn main() {
    let scenario = gps_experiments::Scenario::from_args();
    let net = scenario.universe();
    let report = gps_experiments::exps::sec7::run(&scenario, &net);
    report.print();
}
