//! Regenerates the paper's sec3 evaluation artifact. See DESIGN.md §5.

fn main() {
    let scenario = gps_experiments::Scenario::from_args();
    let net = scenario.universe();
    let report = gps_experiments::exps::sec3::run(&scenario, &net);
    report.print();
}
