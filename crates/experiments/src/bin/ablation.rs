//! Design-choice ablation: what each interaction class (Eq. 4–7) buys.
//!
//! §5.2 argues for independently modeling all four feature-interaction
//! classes and §6.6 shows every class contributes selected rules. This
//! experiment quantifies the design choice end to end: run the full
//! pipeline with each class configuration and compare coverage, bandwidth
//! and model cost.
//!
//! Not a paper figure — the ablation the paper's design discussion implies
//! (DESIGN.md §8).

use gps_core::{run_gps, GpsConfig, Interactions};
use gps_experiments::{Scenario, Table};

const CONFIGS: [(&str, Interactions); 5] = [
    (
        "Eq4 (transport only)",
        Interactions {
            transport: true,
            transport_app: false,
            transport_net: false,
            transport_app_net: false,
        },
    ),
    (
        "Eq4+5 (+app)",
        Interactions {
            transport: true,
            transport_app: true,
            transport_net: false,
            transport_app_net: false,
        },
    ),
    (
        "Eq4+6 (+net)",
        Interactions {
            transport: true,
            transport_app: false,
            transport_net: true,
            transport_app_net: false,
        },
    ),
    (
        "Eq4+5+6",
        Interactions {
            transport: true,
            transport_app: true,
            transport_net: true,
            transport_app_net: false,
        },
    ),
    ("Eq4..7 (GPS)", Interactions::ALL),
];

fn main() {
    let scenario = Scenario::from_args();
    let net = scenario.universe();
    let dataset = scenario.censys(&net, 0.02);

    println!("== interaction-class ablation (Censys workload, /16 step) ==");
    let mut table = Table::new([
        "interactions",
        "model keys",
        "rules",
        "all found",
        "normalized",
        "scans",
    ]);
    let mut results = Vec::new();
    for (name, interactions) in CONFIGS {
        let run = run_gps(
            &net,
            &dataset,
            &GpsConfig {
                step_prefix: 16,
                interactions,
                ..Default::default()
            },
        );
        table.row([
            name.to_string(),
            run.model_stats.distinct_keys.to_string(),
            run.rules.len().to_string(),
            format!("{:.1}%", 100.0 * run.fraction_of_services()),
            format!("{:.1}%", 100.0 * run.fraction_normalized()),
            format!("{:.1}", run.total_scans()),
        ]);
        results.push((name, run));
    }
    table.print();

    // The design trade-off: bare Port keys over-predict — they can match
    // coverage but pay for it in probes. Compare bandwidth at a coverage
    // level every configuration reaches.
    let common = results
        .iter()
        .map(|(_, r)| r.fraction_of_services())
        .fold(f64::INFINITY, f64::min)
        * 0.98;
    println!("\nbandwidth to reach {:.1}% of services:", 100.0 * common);
    for (name, run) in &results {
        match run.curve.scans_to_reach_all(common) {
            Some(scans) => println!(
                "  {name:<22} {scans:>7.1} scans  (end precision {:.4})",
                run.curve.last().precision
            ),
            None => println!("  {name:<22}       - (never reaches it)"),
        }
    }
    println!(
        "\nRicher interaction classes buy *precision*: refined tuples predict the\n\
         same services with fewer wasted probes (§5.2's design rationale), and\n\
         only app/net-bearing rules can express the §6.6 vendor patterns."
    );
}
