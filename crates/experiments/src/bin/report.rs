//! Runs the full experiment suite and emits a Markdown paper-vs-measured
//! report (the body of EXPERIMENTS.md) on stdout. Detailed tables/series go
//! to stderr so the Markdown stays clean:
//!
//! ```sh
//! cargo run --release -p gps-experiments --bin report > EXPERIMENTS.body.md
//! ```

use gps_experiments::{exps, Report, Scenario};

fn main() {
    let scenario = Scenario::from_args();
    let net = scenario.universe();

    // Route each experiment's verbose output to stderr by capturing claims
    // only; experiments print detail via println!, so we just let it go to
    // stdout *before* the markdown — simpler: run all, collect reports, and
    // print the markdown last under a clear marker.
    let runs: Vec<(&str, Report)> = vec![
        ("Table 1", exps::tab1::run(&scenario, &net)),
        ("Table 2", exps::tab2::run(&scenario, &net)),
        ("Table 3 / §6.6 census", exps::tab3::run(&scenario, &net)),
        ("Table 4 (App. C)", exps::tab4::run(&scenario, &net)),
        ("Figure 2", exps::fig2::run(&scenario, &net).report),
        ("Figure 3", exps::fig3::run(&scenario, &net)),
        ("Figure 4", exps::fig4::run(&scenario, &net)),
        ("Figure 5 (App. D.1)", exps::fig5::run(&scenario, &net)),
        ("Figure 6 (App. D.2)", exps::fig6::run(&scenario, &net)),
        ("§2 TGA verification", exps::sec2::run(&scenario, &net)),
        ("§3 churn", exps::sec3::run(&scenario, &net)),
        ("§4 predictive features", exps::sec4::run(&scenario, &net)),
        ("§6.6 anecdotes", exps::sec66::run(&scenario, &net)),
        ("§7 limits", exps::sec7::run(&scenario, &net)),
        ("Appendix A recommender", exps::appa::run(&scenario, &net)),
        (
            "Appendix B pseudo-services",
            exps::appb::run(&scenario, &net),
        ),
    ];

    println!("\n\n<!-- BEGIN GENERATED REPORT -->");
    println!("| experiment | claim | paper | measured | verdict |");
    println!("|---|---|---|---|---|");
    let mut total = 0;
    let mut held = 0;
    for (name, report) in &runs {
        for claim in &report.claims {
            total += 1;
            if claim.ok {
                held += 1;
            }
            println!(
                "| {name} | {} — {} | {} | {} | {} |",
                claim.id,
                claim.description.replace('|', "/"),
                claim.paper.replace('|', "/"),
                claim.measured.replace('|', "/"),
                if claim.ok { "holds" } else { "**diverges**" }
            );
        }
    }
    println!();
    println!("**{held} of {total} claims hold.**");
    println!("<!-- END GENERATED REPORT -->");
}
