//! Regenerates Appendix A (recommender baseline). See DESIGN.md §5.

fn main() {
    let scenario = gps_experiments::Scenario::from_args();
    let net = scenario.universe();
    let report = gps_experiments::exps::appa::run(&scenario, &net);
    report.print();
}
