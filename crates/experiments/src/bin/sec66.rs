//! Regenerates the paper's sec66 evaluation artifact. See DESIGN.md §5.

fn main() {
    let scenario = gps_experiments::Scenario::from_args();
    let net = scenario.universe();
    let report = gps_experiments::exps::sec66::run(&scenario, &net);
    report.print();
}
