//! Development tool: print the universe's vital statistics and a first-cut
//! GPS-vs-baselines comparison, used to tune the synthetic-universe knobs so
//! the paper's curve shapes hold. Not a paper experiment.

use gps_core::{run_gps, GpsConfig};
use gps_experiments::{ratio, Scenario};
use gps_synthnet::stats;
use gps_synthnet::PortCensus;

fn main() {
    let scenario = Scenario::from_args();
    let net = scenario.universe();
    let census = PortCensus::new(&net, 0);

    println!("== universe shape ==");
    println!("distinct populated ports: {}", census.num_ports());
    println!(
        "ports with >2 IPs:        {}",
        census.ports_with_more_than(2).len()
    );
    println!(
        "share of top-10 ports:    {:.1}%",
        100.0 * census.share_of_top(10)
    );
    println!(
        "share of top-100 ports:   {:.1}%",
        100.0 * census.share_of_top(100)
    );
    println!(
        "share of top-2000 ports:  {:.1}%",
        100.0 * census.share_of_top(2000)
    );
    let co = stats::slash16_cooccurrence(&net, 0);
    println!(
        "/16 co-occurrence:        {:.1}%",
        100.0 * co.overall_fraction
    );
    println!(
        "forwarded in tail:        {:.1}%",
        100.0 * stats::forwarded_fraction_uncommon(&net, 0, 50)
    );
    let day10 = net.total_services_on(10);
    println!(
        "10-day churn:             {:.1}%",
        100.0 * (1.0 - day10 as f64 / net.total_services() as f64)
    );

    for (name, seed_frac, step) in [
        ("censys 2% seed /16", 0.02, 16u8),
        ("censys 5% seed /16", 0.05, 16u8),
    ] {
        let ds = scenario.censys(&net, seed_frac);
        let run = run_gps(
            &net,
            &ds,
            &GpsConfig {
                seed_fraction: seed_frac,
                step_prefix: step,
                ..Default::default()
            },
        );
        let exhaustive = gps_baselines::optimal_port_order_curve(&net, &ds, usize::MAX);
        report(name, &net, &ds, &run, &exhaustive);
    }

    {
        let ds = scenario.lzr(&net, 0.40, 0.0625);
        let run = run_gps(
            &net,
            &ds,
            &GpsConfig {
                seed_fraction: 0.025,
                step_prefix: 16,
                ..Default::default()
            },
        );
        let exhaustive = gps_baselines::optimal_port_order_curve(&net, &ds, usize::MAX);
        report("lzr 40%/2.5% seed /16", &net, &ds, &run, &exhaustive);
    }
}

fn report(
    name: &str,
    net: &gps_synthnet::Internet,
    ds: &gps_core::Dataset,
    run: &gps_core::GpsRun,
    exhaustive: &gps_core::DiscoveryCurve,
) {
    println!("\n== {name} ({}) ==", ds.name);
    println!(
        "test services {} across {} ports",
        ds.test.total(),
        ds.test.num_ports()
    );
    println!(
        "seed: {} raw obs -> {} filtered; model keys {}; priors {} scanned {}; rules {}; predictions {}",
        run.seed_observations_raw,
        run.seed_observations,
        run.model_stats.distinct_keys,
        run.priors_list.len(),
        run.priors_scanned,
        run.rules.len(),
        run.predictions_total
    );
    let last = run.curve.last();
    println!(
        "GPS: found {:.1}% all / {:.1}% normalized with {:.2} scans (precision at end {:.4})",
        100.0 * last.fraction_all,
        100.0 * last.fraction_normalized,
        last.scans,
        last.precision
    );
    // Decompose missed test services by placement kind and whether the
    // priors list could reach them at all.
    {
        use std::collections::{HashMap, HashSet};
        let tuples: HashSet<(u16, u32)> = run
            .priors_list
            .iter()
            .map(|e| (e.port.0, e.subnet.base().0))
            .collect();
        let mut missed: HashMap<&'static str, u64> = HashMap::new();
        let mut total_missed = 0u64;
        for key in ds.test.services() {
            if run.found.contains(key) {
                continue;
            }
            total_missed += 1;
            let svc = net
                .service(key.ip, key.port, ds.day)
                .expect("test service exists");
            let kind = match svc.placement {
                gps_synthnet::PlacementKind::Forwarded => "forwarded(random)",
                gps_synthnet::PlacementKind::Random => "random-high",
                _ => {
                    let step = gps_types::Subnet::of_ip(key.ip, 16);
                    if tuples.contains(&(key.port.0, step.base().0)) {
                        "structured, tuple existed"
                    } else {
                        "structured, cell unseen in seed"
                    }
                }
            };
            *missed.entry(kind).or_default() += 1;
        }
        println!("  missed {total_missed} test services:");
        let mut rows: Vec<_> = missed.into_iter().collect();
        rows.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        for (k, v) in rows {
            println!(
                "    {k:<32} {v:>8}  ({:.1}%)",
                100.0 * v as f64 / total_missed as f64
            );
        }
    }
    for target in [0.80, 0.90, 0.925, 0.95] {
        let gps_b = run.curve.scans_to_reach_all(target);
        let ex_b = exhaustive.scans_to_reach_all(target);
        match (gps_b, ex_b) {
            (Some(g), Some(e)) => {
                println!(
                    "  all>={:.1}%: GPS {:.2} vs exhaustive {:.2} => {:.1}x less",
                    100.0 * target,
                    g,
                    e,
                    ratio(e, g)
                );
            }
            (g, e) => println!(
                "  all>={:.1}%: GPS {:?} vs exhaustive {:?}",
                100.0 * target,
                g,
                e
            ),
        }
    }
    for target in [0.2, 0.4, 0.6] {
        let gps_b = run.curve.scans_to_reach_normalized(target);
        let ex_b = exhaustive.scans_to_reach_normalized(target);
        match (gps_b, ex_b) {
            (Some(g), Some(e)) => {
                println!(
                    "  norm>={:.0}%: GPS {:.2} vs exhaustive {:.2} => {:.1}x less",
                    100.0 * target,
                    g,
                    e,
                    ratio(e, g)
                );
            }
            (g, e) => println!(
                "  norm>={:.0}%: GPS {:?} vs exhaustive {:?}",
                100.0 * target,
                g,
                e
            ),
        }
    }
}
