//! Regenerates the paper's tab2 evaluation artifact. See DESIGN.md §5.

fn main() {
    let scenario = gps_experiments::Scenario::from_args();
    let net = scenario.universe();
    let report = gps_experiments::exps::tab2::run(&scenario, &net);
    report.print();
}
