//! Regenerates Figure 2 (service discovery vs bandwidth). See DESIGN.md §5.

fn main() {
    let scenario = gps_experiments::Scenario::from_args();
    let net = scenario.universe();
    let out = gps_experiments::exps::fig2::run(&scenario, &net);
    out.report.print();
}
