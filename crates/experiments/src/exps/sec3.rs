//! §3 — service churn over ten days.
//!
//! The paper scans the same 0.1% of IPv4 across all ports twice, ten days
//! apart: 9% of all services and 15% of normalized services disappear —
//! the motivation for GPS's wall-time constraint (slow predictions go
//! stale). We reproduce the paired scan against the ground truth's churn
//! model.

use std::collections::HashMap;

use gps_core::filter_pseudo_services;
use gps_scan::{ScanConfig, ScanPhase, Scanner};
use gps_synthnet::Internet;
use gps_types::{Rng, ServiceKey};

use crate::{Report, Scenario};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();

    // Sample ~10% of the space and scan all ports on day 0 and day 10.
    let sample = (net.universe_size() / 10) as usize;
    let mut rng = Rng::new(scenario.seed ^ 0x5EC3);
    let blocks = net.topology().blocks();
    let ips: Vec<gps_types::Ip> = gps_scan::CyclicPermutation::new(net.universe_size(), &mut rng)
        .take(sample)
        .map(|idx| gps_types::Ip(blocks[(idx / 65536) as usize].base | (idx % 65536) as u32))
        .collect();

    let all_ports = net.all_ports();
    let mut day0_scanner = Scanner::new(
        net,
        ScanConfig {
            day: 0,
            ..Default::default()
        },
    );
    let day0 = day0_scanner.scan_ip_set(ScanPhase::Baseline, ips.iter().copied(), &all_ports);
    let mut day10_scanner = Scanner::new(
        net,
        ScanConfig {
            day: 10,
            ..Default::default()
        },
    );
    let day10 = day10_scanner.scan_ip_set(ScanPhase::Baseline, ips.iter().copied(), &all_ports);
    // The paper's scans are LZR-filtered: drop middlebox pseudo-services
    // (which never churn and would dilute the measurement).
    let (day0, _) = filter_pseudo_services(day0);
    let (day10, _) = filter_pseudo_services(day10);

    let day10_keys: std::collections::HashSet<ServiceKey> = day10.iter().map(|o| o.key()).collect();

    // All-services loss.
    let total0 = day0.len() as f64;
    let gone = day0
        .iter()
        .filter(|o| !day10_keys.contains(&o.key()))
        .count() as f64;
    let loss_all = gone / total0;

    // Normalized loss: per-port disappearance averaged over ports.
    let mut per_port: HashMap<u16, (u64, u64)> = HashMap::new(); // (day0, survived)
    for o in &day0 {
        let e = per_port.entry(o.port.0).or_default();
        e.0 += 1;
        if day10_keys.contains(&o.key()) {
            e.1 += 1;
        }
    }
    let loss_norm = per_port
        .values()
        .map(|&(t, s)| 1.0 - s as f64 / t as f64)
        .sum::<f64>()
        / per_port.len().max(1) as f64;

    println!("== §3: ten-day churn ==");
    println!("day-0 services observed: {}", day0.len());
    println!("day-10 services observed: {}", day10.len());
    println!(
        "disappeared: {:.1}% of all, {:.1}% of normalized",
        100.0 * loss_all,
        100.0 * loss_norm
    );

    report.claim(
        "sec3-all",
        "fraction of all services disappearing within 10 days",
        "9%",
        format!("{:.1}%", 100.0 * loss_all),
        (0.04..=0.20).contains(&loss_all),
    );
    report.claim(
        "sec3-normalized",
        "normalized churn exceeds raw churn (uncommon ports churn faster)",
        "15% normalized vs 9% overall",
        format!(
            "{:.1}% normalized vs {:.1}% overall",
            100.0 * loss_norm,
            100.0 * loss_all
        ),
        loss_norm > loss_all,
    );

    report
}
