//! Figure 4 — GPS vs the XGBoost sequential scanner (§6.4).
//!
//! Three panels over 19 popular TCP ports:
//!
//! - (a) bandwidth to collect the *minimum set of predictive services* (the
//!   prior information each system needs before predicting the target
//!   port). For the XGBoost scanner that is everything scanned earlier in
//!   its sequence; for GPS it is the priors-scan tuples attributable to the
//!   target port.
//! - (b) bandwidth to then cover the target port's remaining services.
//! - (c) normalized-service discovery over the whole port set.
//!
//! Paper: GPS needs on average 5.7× (up to 28×) less prior bandwidth, beats
//! XGBoost on 16 of 19 ports for remaining bandwidth, and finds 98.5% of
//! normalized services with 3× less total bandwidth.

use std::collections::HashSet;

use gps_baselines::{run_xgb_scanner, GbdtParams, XgbScannerConfig};
use gps_core::{run_gps, GpsConfig, GpsRun};
use gps_synthnet::Internet;
use gps_types::{Port, Subnet};

use crate::{ratio, Report, Scenario, Table};

/// The 19 evaluation ports (§6.4's TCP set, mapped to anchors that exist in
/// the synthetic universe).
pub const EVAL_PORTS: [u16; 19] = [
    80, 443, 22, 7547, 23, 445, 5000, 25, 3306, 8080, 554, 21, 993, 143, 995, 110, 5432, 465, 2323,
];

/// GPS's prior tuples for one target port: the (port_b, step-subnet)
/// tuples its seed services map to (§5.3 restricted to the target port).
fn gps_prior_tuples(run: &GpsRun, target: Port, step: u8) -> HashSet<(u16, u32)> {
    let mut tuples: HashSet<(u16, u32)> = HashSet::new();
    for host in &run.seed_host_records {
        let has_target = host.services.iter().any(|s| s.port == target);
        if !has_target {
            continue;
        }
        let subnet = Subnet::of_ip(host.ip, step);
        if host.services.len() == 1 {
            tuples.insert((target.0, subnet.base().0));
        } else if let Some((idx, _, _)) = run.model.best_predictor_for(host, target) {
            tuples.insert((host.services[idx].port.0, subnet.base().0));
        } else {
            tuples.insert((target.0, subnet.base().0));
        }
    }
    tuples
}

/// Bandwidth of a tuple set in 100%-scan units (step ≥ 16 keeps this exact:
/// every tuple lies inside one allocated /16).
fn tuples_scans(tuples: &HashSet<(u16, u32)>, net: &Internet, step: u8) -> f64 {
    let per_tuple = 1u64 << (32 - step.min(16));
    tuples.len() as f64 * per_tuple as f64 / net.universe_size() as f64
}

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.censys(net, 0.02);

    // GPS per the paper's fig4 config: /16 step to balance coverage and
    // accuracy.
    let gps = run_gps(
        net,
        &dataset,
        &GpsConfig {
            step_prefix: 16,
            ..Default::default()
        },
    );

    let ports: Vec<Port> = EVAL_PORTS
        .iter()
        .map(|&p| Port(p))
        .filter(|p| dataset.test.port_count(*p) > 2)
        .collect();

    // GPS per-port breakdown.
    struct GpsPort {
        port: Port,
        prior: f64,
        remaining: f64,
        coverage: f64,
    }
    let mut union_tuples: HashSet<(u16, u32)> = HashSet::new();
    let gps_ports: Vec<GpsPort> = ports
        .iter()
        .map(|&port| {
            let tuples = gps_prior_tuples(&gps, port, 16);
            let prior = tuples_scans(&tuples, net, 16);
            union_tuples.extend(&tuples);
            let found = gps.found.iter().filter(|k| k.port == port).count() as u64;
            let truth = dataset.test.port_count(port);
            // Remaining cost: prediction probes GPS spent on this port.
            let remaining = gps.predictions_per_port.get(&port.0).copied().unwrap_or(0) as f64
                / net.universe_size() as f64;
            GpsPort {
                port,
                prior,
                remaining,
                coverage: if truth == 0 {
                    1.0
                } else {
                    found as f64 / truth as f64
                },
            }
        })
        .collect();

    // Target coverage for XGBoost = what GPS achieved on average (the paper
    // evaluates XGBoost at GPS's maximum coverage level).
    let mean_cov =
        (gps_ports.iter().map(|g| g.coverage).sum::<f64>() / gps_ports.len() as f64).min(0.99);

    let xgb = run_xgb_scanner(
        net,
        &dataset,
        &XgbScannerConfig {
            ports: ports.clone(),
            target_coverage: mean_cov,
            gbdt: GbdtParams {
                n_trees: 12,
                max_depth: 3,
                ..Default::default()
            },
            seed: scenario.seed ^ 0xF164,
        },
    );

    // -------------------------------------------------------------- tables
    println!("== Figure 4a/4b: per-port bandwidth (100%-scan units) ==");
    let mut table = Table::new([
        "port",
        "GPS prior",
        "XGB prior",
        "GPS remaining",
        "XGB remaining",
        "GPS cov",
        "XGB cov",
    ]);
    let mut gps_prior_wins = 0;
    let mut gps_rem_wins = 0;
    let mut prior_ratios: Vec<f64> = Vec::new();
    for (g, x) in gps_ports.iter().zip(&xgb.outcomes) {
        assert_eq!(g.port, x.port);
        if g.prior <= x.prior_scans {
            gps_prior_wins += 1;
        }
        if g.remaining <= x.remaining_scans {
            gps_rem_wins += 1;
        }
        if g.prior > 0.0 {
            prior_ratios.push(x.prior_scans / g.prior);
        }
        table.row([
            g.port.to_string(),
            format!("{:.3}", g.prior),
            format!("{:.3}", x.prior_scans),
            format!("{:.4}", g.remaining),
            format!("{:.4}", x.remaining_scans),
            format!("{:.2}", g.coverage),
            format!("{:.2}", x.coverage),
        ]);
    }
    table.print();

    let avg_prior_ratio = prior_ratios.iter().sum::<f64>() / prior_ratios.len().max(1) as f64;
    let best_prior_ratio = prior_ratios.iter().cloned().fold(0.0, f64::max);
    report.claim(
        "fig4a",
        "bandwidth to collect the minimum set of predictive services",
        "GPS needs 5.7x less on average, up to 28x less (port 2323)",
        format!(
            "GPS cheaper on {}/{} ports; avg {:.1}x, best {:.1}x less",
            gps_prior_wins,
            gps_ports.len(),
            avg_prior_ratio,
            best_prior_ratio
        ),
        gps_prior_wins * 2 > gps_ports.len() && avg_prior_ratio > 1.5,
    );
    report.claim(
        "fig4b",
        "bandwidth to cover the target port's remaining services",
        "GPS cheaper on 16 of 19 ports (about half the bandwidth on average)",
        format!("GPS cheaper on {}/{} ports", gps_rem_wins, gps_ports.len()),
        gps_rem_wins * 2 > gps_ports.len(),
    );

    // ------------------------------------------------------------- fig 4c
    // Bandwidth attributable to covering these 19 ports: the union of their
    // priors tuples plus their prediction probes. (Neither system is
    // charged for the shared training data — the paper's XGBoost trains on
    // the pre-existing Censys sample, and its fig4c x-axis is far below the
    // seed-collection cost.)
    let gps_19 =
        tuples_scans(&union_tuples, net, 16) + gps_ports.iter().map(|g| g.remaining).sum::<f64>();
    let xgb_total = xgb.total_scans;
    // Amortization is the paper's real point: the XGBoost scanner spends its
    // budget on exactly these 19 ports and *cannot* scale further (§2),
    // while GPS's machinery covers every port at once. Compare per-port
    // amortized cost: GPS's full run over every port it discovered on vs
    // the sequential scanner's budget over its 19.
    let gps_ports_covered = {
        let ports: std::collections::HashSet<u16> = gps.found.iter().map(|k| k.port.0).collect();
        ports.len().max(1)
    };
    let gps_amortized = gps.total_scans() / gps_ports_covered as f64;
    let xgb_amortized = xgb_total / ports.len() as f64;
    let xgb_norm = xgb.curve.last().fraction_normalized;
    // GPS normalized over the same eval ports.
    let mut norm_sum = 0.0;
    for &port in &ports {
        let truth = dataset.test.port_count(port);
        if truth > 0 {
            let found = gps.found.iter().filter(|k| k.port == port).count() as f64;
            norm_sum += found / truth as f64;
        }
    }
    let gps_norm = norm_sum / ports.len() as f64;
    println!(
        "\nfig4c: GPS {:.1}% normalized, {:.1} scans attributable to these ports \
         ({:.3} scans/port amortized over {} covered ports) | XGBoost {:.1}% at {:.1} scans \
         ({:.3} scans/port over {} ports)",
        100.0 * gps_norm,
        gps_19,
        gps_amortized,
        gps_ports_covered,
        100.0 * xgb_norm,
        xgb_total,
        xgb_amortized,
        ports.len(),
    );
    report.claim(
        "fig4c",
        "amortized bandwidth per covered port at matched normalized coverage",
        "GPS finds 98.5% of normalized services with 3x less bandwidth; XGBoost cannot scale past its port list",
        format!(
            "GPS {:.3} scans/port across {} ports vs XGBoost {:.3} scans/port across {} ({:.0}x) — attributable-19-port bandwidth {:.1} vs {:.1}",
            gps_amortized,
            gps_ports_covered,
            xgb_amortized,
            ports.len(),
            ratio(xgb_amortized, gps_amortized),
            gps_19,
            xgb_total,
        ),
        gps_norm >= xgb_norm * 0.9 && gps_amortized < xgb_amortized,
    );

    report
}
