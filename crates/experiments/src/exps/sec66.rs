//! §6.6 — the most-predictive-feature census and its anecdotes.
//!
//! The paper: GPS selects 402K unique feature values as most predictive;
//! HTTP-derived information contributes 45% of them; and the interactions
//! surface network-vendor stories — Distributel hosts whose disabled-telnet
//! banner on 23 predicts HTTP on 8082, and Bizland hosts whose IMAP
//! STARTTLS banner predicts SSH on 2222. Both anecdotes have analogs planted
//! in the synthetic universe; this experiment checks GPS actually finds
//! them.

use gps_core::{run_gps, GpsConfig};
use gps_synthnet::Internet;
use gps_types::{Port, Protocol};

use crate::{Report, Scenario};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.censys(net, 0.01);
    let run = run_gps(
        net,
        &dataset,
        &GpsConfig {
            step_prefix: 16,
            ..Default::default()
        },
    );

    // Census of the selected rules.
    let mut http = 0usize;
    let mut with_app = 0usize;
    for (key, targets) in run.rules.iter() {
        if let Some(f) = key.app() {
            with_app += targets.len();
            if f.kind.source_protocol() == Some(Protocol::Http)
                || f.kind == gps_types::FeatureKind::Protocol
            {
                http += targets.len();
            }
        }
    }
    println!("== §6.6: most-predictive feature census ==");
    println!(
        "selected rules: {} over {} distinct tuples ({} with app features; {:.1}% HTTP-derived of those)",
        run.rules.len(),
        run.rules.num_keys(),
        with_app,
        100.0 * http as f64 / with_app.max(1) as f64
    );
    report.claim(
        "sec66-census",
        "GPS selects a large most-predictive-features list; HTTP contributes the most",
        "402K unique values selected; HTTP features contribute 45%",
        format!(
            "{} rules selected; HTTP-derived {:.0}% of app-feature rules",
            run.rules.len(),
            100.0 * http as f64 / with_app.max(1) as f64
        ),
        run.rules.len() > 1000 && http * 5 > with_app,
    );

    // The anecdotes are conditional probabilities the model learned; query
    // them directly (the argmax rules list may route the same prediction
    // through an equally-strong simpler key).
    let model_prob = |port: u16, banner_substr: &str, target: u16| -> f64 {
        let mut best = 0.0f64;
        for (key, stats) in run.model.iter() {
            if key.port() != Port(port) {
                continue;
            }
            let Some(f) = key.app() else { continue };
            if !net.interner().resolve(f.value).contains(banner_substr) {
                continue;
            }
            best = best.max(stats.probability(Port(target)));
        }
        best
    };
    let telnet_p = model_prob(23, "Telnet service is disabled", 8082);
    let imap_p = model_prob(143, "STARTTLS required", 2222);
    println!(
        "anecdote probabilities: P(8082 | 23, disabled-telnet banner) = {telnet_p:.2};          P(2222 | 143, STARTTLS banner) = {imap_p:.2}"
    );
    report.claim(
        "sec66-anecdotes",
        "network-vendor interaction patterns are learned (Distributel/Bizland analogs)",
        "95% of AS1181 telnet-disabled hosts serve HTTP on 8082; 98% of Bizland IMAP hosts serve SSH on 2222",
        format!("P(8082|banner)={:.0}%; P(2222|banner)={:.0}%", 100.0 * telnet_p, 100.0 * imap_p),
        telnet_p > 0.8 && imap_p > 0.8,
    );

    // And the predictions actually cash in: count found services on 8082 /
    // 2222.
    let found_8082 = run.found.iter().filter(|k| k.port == Port(8082)).count();
    let truth_8082 = dataset.test.port_count(Port(8082));
    let found_2222 = run.found.iter().filter(|k| k.port == Port(2222)).count();
    let truth_2222 = dataset.test.port_count(Port(2222));
    println!("discovered: 8082 {found_8082}/{truth_8082}; 2222 {found_2222}/{truth_2222}");
    report.claim(
        "sec66-payoff",
        "the anecdote rules translate into discovered services",
        "uncommon vendor ports recovered at high coverage",
        format!(
            "8082: {:.0}% of {} services; 2222: {:.0}% of {}",
            100.0 * found_8082 as f64 / truth_8082.max(1) as f64,
            truth_8082,
            100.0 * found_2222 as f64 / truth_2222.max(1) as f64,
            truth_2222
        ),
        truth_8082 > 0 && found_8082 as f64 / truth_8082 as f64 > 0.5,
    );

    report
}
