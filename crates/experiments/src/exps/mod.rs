//! One module per reproduced table/figure; see DESIGN.md §5 for the index.

pub mod appa;
pub mod appb;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod sec2;
pub mod sec3;
pub mod sec4;
pub mod sec66;
pub mod sec7;
pub mod tab1;
pub mod tab2;
pub mod tab3;
pub mod tab4;
