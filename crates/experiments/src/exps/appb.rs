//! Appendix B — filtering pseudo-services.
//!
//! Middleboxes serve near-identical "pseudo services" on >1000 contiguous
//! ports; the paper finds they dominate 96% of ports before filtering, and
//! that the final heuristic — drop any host serving more than 10 services —
//! identifies them with 100% recall and 99% precision. We evaluate the
//! filter against the synthetic ground truth, where middleboxes are known
//! exactly.

use std::collections::HashSet;

use gps_core::filter_pseudo_services;
use gps_scan::{ScanConfig, ScanPhase, Scanner};
use gps_synthnet::Internet;
use gps_types::Rng;

use crate::{Report, Scenario};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();

    // A ~10% all-port sample scan, unfiltered.
    let sample = (net.universe_size() / 10) as usize;
    let mut rng = Rng::new(scenario.seed ^ 0xA99B);
    let blocks = net.topology().blocks();
    let ips: Vec<gps_types::Ip> = gps_scan::CyclicPermutation::new(net.universe_size(), &mut rng)
        .take(sample)
        .map(|idx| gps_types::Ip(blocks[(idx / 65536) as usize].base | (idx % 65536) as u32))
        .collect();
    let all_ports = net.all_ports();
    let mut scanner = Scanner::new(net, ScanConfig::default());
    let raw = scanner.scan_ip_set(ScanPhase::Baseline, ips.iter().copied(), &all_ports);

    // How much do pseudo-services dominate before filtering?
    let pseudo_ips: HashSet<u32> = net.pseudo_hosts().iter().map(|p| p.ip.0).collect();
    let raw_pseudo = raw.iter().filter(|o| pseudo_ips.contains(&o.ip.0)).count();
    println!("== Appendix B: pseudo-service filtering ==");
    println!(
        "raw observations: {} ({} = {:.1}% from middleboxes)",
        raw.len(),
        raw_pseudo,
        100.0 * raw_pseudo as f64 / raw.len().max(1) as f64
    );

    // Apply the filter; evaluate host-level recall/precision of the
    // middlebox flagging.
    let sampled_hosts: HashSet<u32> = raw.iter().map(|o| o.ip.0).collect();
    let (kept, stats) = filter_pseudo_services(raw);
    let kept_hosts: HashSet<u32> = kept.iter().map(|o| o.ip.0).collect();
    let flagged: HashSet<u32> = sampled_hosts.difference(&kept_hosts).copied().collect();

    let sampled_pseudo: HashSet<u32> = sampled_hosts.intersection(&pseudo_ips).copied().collect();
    let true_positives = flagged.intersection(&sampled_pseudo).count();
    let recall = true_positives as f64 / sampled_pseudo.len().max(1) as f64;
    let precision = true_positives as f64 / flagged.len().max(1) as f64;

    println!(
        "flagged {} hosts ({} middleboxes in sample): recall {:.1}%, precision {:.1}%",
        flagged.len(),
        sampled_pseudo.len(),
        100.0 * recall,
        100.0 * precision
    );
    println!(
        "dropped {} big-host observations + {} duplicate-content observations",
        stats.dropped_big_hosts, stats.dropped_duplicate_content
    );

    report.claim(
        "appB-recall",
        "the >10-services rule catches every middlebox",
        "100% recall",
        format!(
            "{:.1}% recall ({}/{})",
            100.0 * recall,
            true_positives,
            sampled_pseudo.len()
        ),
        recall > 0.999,
    );
    report.claim(
        "appB-precision",
        "almost everything the rule drops really is a middlebox",
        "99% precision",
        format!(
            "{:.1}% precision ({} flagged)",
            100.0 * precision,
            flagged.len()
        ),
        precision > 0.9,
    );
    // Pseudo-services dominate the raw data (motivation for filtering).
    report.claim(
        "appB-dominance",
        "pseudo services dominate raw all-port scans before filtering",
        "most services on 96% of ports are pseudo services",
        format!(
            "{:.0}% of raw observations are pseudo",
            100.0 * raw_pseudo as f64 / (raw_pseudo as f64 + kept.len() as f64)
        ),
        raw_pseudo * 2 > kept.len(),
    );

    report
}
