//! Figure 3 — GPS precision as it finds services.
//!
//! GPS scans the most predictable services first, so precision starts high
//! (the paper: 36% over the first 1% of services — one order of magnitude
//! above exhaustive probing) and decays as predictions are exhausted, while
//! staying consistently over an order of magnitude above exhaustive probing
//! (204× at the 94th percentile).
//!
//! Configuration per the paper: 1% seed, small (/20) scanning step to
//! maximize precision.

use gps_baselines::optimal_port_order_curve;
use gps_core::{censys_dataset, run_gps, GpsConfig};
use gps_synthnet::Internet;

use crate::{print_series, ratio, Report, Scenario};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let top_k = if scenario.quick { 200 } else { 2000 };
    let dataset = censys_dataset(net, top_k, 0.01, 0, scenario.seed ^ 0xF163);

    let run = run_gps(
        net,
        &dataset,
        &GpsConfig {
            step_prefix: 20,
            ..Default::default()
        },
    );
    let exhaustive = optimal_port_order_curve(net, &dataset, usize::MAX);

    println!("== Figure 3: precision vs fraction of services found ==");
    print_series(
        "GPS (fraction of services, precision)",
        &run.curve
            .points
            .iter()
            .filter(|p| p.discovery_probes > 0)
            .map(|p| (p.fraction_all, p.precision))
            .collect::<Vec<_>>(),
        20,
    );
    print_series(
        "exhaustive optimal order (fraction, precision)",
        &exhaustive
            .points
            .iter()
            .filter(|p| p.discovery_probes > 0)
            .map(|p| (p.fraction_all, p.precision))
            .collect::<Vec<_>>(),
        20,
    );

    // Precision over the first 1% of services found.
    let first = run
        .curve
        .points
        .iter()
        .find(|p| p.fraction_all >= 0.01 && p.discovery_probes > 0)
        .map(|p| p.precision)
        .unwrap_or(0.0);
    let ex_first = exhaustive
        .points
        .iter()
        .find(|p| p.fraction_all >= 0.01 && p.discovery_probes > 0)
        .map(|p| p.precision)
        .unwrap_or(f64::NAN);
    report.claim(
        "fig3-first",
        "precision over the first 1% of services found",
        "GPS 36%, one order of magnitude above exhaustive probing",
        format!(
            "GPS {:.1}% vs exhaustive {:.2}% ({:.0}x)",
            100.0 * first,
            100.0 * ex_first,
            ratio(first, ex_first)
        ),
        // The simulated universe's host density (needed so small seeds can
        // see patterns) inflates exhaustive probing's precision ~20x vs the
        // real IPv4 space, compressing all precision ratios (EXPERIMENTS.md).
        ratio(first, ex_first) > 5.0,
    );

    // Precision ratio at GPS's high-coverage end.
    let gps_end = run.fraction_of_services();
    let target = (gps_end - 0.01).max(0.3);
    let gps_p = run
        .curve
        .points
        .iter()
        .find(|p| p.fraction_all >= target)
        .map(|p| p.precision)
        .unwrap_or(0.0);
    let ex_p = exhaustive
        .points
        .iter()
        .find(|p| p.fraction_all >= target)
        .map(|p| p.precision)
        .unwrap_or(f64::NAN);
    report.claim(
        "fig3-tail",
        format!(
            "precision advantage at {:.0}% of services found",
            100.0 * target
        ),
        "204x more precise than exhaustive probing at the 94th percentile",
        format!(
            "GPS {:.3}% vs exhaustive {:.4}% ({:.0}x)",
            100.0 * gps_p,
            100.0 * ex_p,
            ratio(gps_p, ex_p)
        ),
        ratio(gps_p, ex_p) > 3.0,
    );

    // Precision decays monotonically-ish as predictions are exhausted.
    let mid = run
        .curve
        .points
        .iter()
        .find(|p| p.fraction_all >= gps_end * 0.5)
        .map(|p| p.precision)
        .unwrap_or(0.0);
    report.claim(
        "fig3-decay",
        "precision decreases as GPS exhausts predictions in descending predictability",
        "curve decays from 36% toward the random-probe floor",
        format!(
            "{:.1}% (first 1%) -> {:.1}% (half coverage) -> {:.2}% (end)",
            100.0 * first,
            100.0 * mid,
            100.0 * run.curve.last().precision
        ),
        first >= mid && mid >= run.curve.last().precision * 0.99,
    );

    report
}
