//! Table 1 — GPS features and their dimensionality in the ground truth.
//!
//! The paper's table reports the number of unique values per feature in the
//! Censys ground truth: hash-like features in the tens of millions, banner
//! strings in the hundreds of thousands, and manufactured CWMP fields at
//! 10–11 values. Absolute counts scale with universe size; the claim we
//! verify is the *ordering* (hashes ≫ banners ≫ CWMP header) and that all
//! 25 features are populated.

use std::collections::{HashMap, HashSet};

use gps_synthnet::Internet;
use gps_types::{FeatureKind, Sym};

use crate::{Report, Scenario, Table};

pub fn run(_scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();

    let mut distinct: HashMap<FeatureKind, HashSet<Sym>> = HashMap::new();
    let mut slash16s: HashSet<u32> = HashSet::new();
    let mut asns: HashSet<u32> = HashSet::new();
    for (ip, host) in net.iter_hosts() {
        slash16s.insert(ip.slash16().base().0);
        if let Some(asn) = net.asn_of(ip) {
            asns.insert(asn.0);
        }
        for service in &host.services {
            for f in &service.features {
                distinct.entry(f.kind).or_default().insert(f.value);
            }
        }
    }

    println!("== Table 1: feature dimensionality (ground truth) ==");
    let mut table = Table::new(["feature", "unique values", "paper (3.7B-scale)"]);
    let paper: &[(FeatureKind, &str)] = &[
        (FeatureKind::Protocol, "56"),
        (FeatureKind::TlsCertHash, "30.1M"),
        (FeatureKind::TlsCertOrganization, "1.1M"),
        (FeatureKind::TlsCertSubjectName, "27.9M"),
        (FeatureKind::HttpHtmlTitle, "5.9M"),
        (FeatureKind::HttpBodyHash, "50.8M"),
        (FeatureKind::HttpServer, "480K"),
        (FeatureKind::HttpHeader, "22K"),
        (FeatureKind::SshHostKey, "14.3M"),
        (FeatureKind::SshBanner, "177K"),
        (FeatureKind::VncDesktopName, "4.5K"),
        (FeatureKind::SmtpBanner, "2.9M"),
        (FeatureKind::FtpBanner, "1.5M"),
        (FeatureKind::ImapBanner, "144K"),
        (FeatureKind::Pop3Banner, "390K"),
        (FeatureKind::CwmpHeader, "10"),
        (FeatureKind::CwmpBodyHash, "11"),
        (FeatureKind::TelnetBanner, "219K"),
        (FeatureKind::PptpVendor, "390K"),
        (FeatureKind::MysqlServerVersion, "5.7K"),
        (FeatureKind::MemcachedServerVersion, "129"),
        (FeatureKind::MssqlServerVersion, "381"),
        (FeatureKind::IpmiBanner, "116"),
    ];
    for &(kind, paper_dim) in paper {
        let n = distinct.get(&kind).map(|s| s.len()).unwrap_or(0);
        table.row([
            kind.label().to_string(),
            n.to_string(),
            paper_dim.to_string(),
        ]);
    }
    table.row([
        "IP's /16 subnetwork".into(),
        slash16s.len().to_string(),
        "37.3K".into(),
    ]);
    table.row(["IP's ASN".into(), asns.len().to_string(), "67.7K".into()]);
    table.print();

    let all_populated = paper
        .iter()
        .all(|&(k, _)| distinct.get(&k).map(|s| !s.is_empty()).unwrap_or(false));
    report.claim(
        "tab1-coverage",
        "all 25 features are populated in the ground truth",
        "25 features spanning all 15 bannered protocols",
        format!(
            "{} of 23 app features populated, /16s={}, ASNs={}",
            paper
                .iter()
                .filter(|&&(k, _)| distinct.get(&k).map(|s| !s.is_empty()).unwrap_or(false))
                .count(),
            slash16s.len(),
            asns.len()
        ),
        all_populated && !slash16s.is_empty() && !asns.is_empty(),
    );

    let dim = |k: FeatureKind| distinct.get(&k).map(|s| s.len()).unwrap_or(0);
    report.claim(
        "tab1-ordering",
        "dimensionality ordering: per-host hashes >> banner strings >> CWMP header",
        "HTTP body hash 50.8M >> SSH banner 177K >> CWMP header 10",
        format!(
            "TLS cert hash {} / HTTP body hash {} >> HTTP server {} >> CWMP header {}",
            dim(FeatureKind::TlsCertHash),
            dim(FeatureKind::HttpBodyHash),
            dim(FeatureKind::HttpServer),
            dim(FeatureKind::CwmpHeader)
        ),
        dim(FeatureKind::TlsCertHash) > dim(FeatureKind::HttpServer)
            && dim(FeatureKind::HttpServer) >= dim(FeatureKind::CwmpHeader)
            && dim(FeatureKind::CwmpHeader) <= 20,
    );

    report
}
