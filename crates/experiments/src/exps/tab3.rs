//! Table 3 + §6.6 — which features are most predictive.
//!
//! For every seed service, GPS selects the feature tuple with the maximum
//! conditional probability; Table 3 tallies which tuple *shape* wins, by the
//! share of normalized services and of all services it predicts. The paper's
//! top-5 is led by (Port, Port_Protocol) at 18.7% of normalized services,
//! with bare Port second at 14.1%, and HTTP-derived features contributing
//! 45% of all selected values.

use std::collections::HashMap;

use gps_core::{run_gps, CondKey, GpsConfig, NetKey};
use gps_synthnet::Internet;
use gps_types::FeatureKind;

use crate::{Report, Scenario, Table};

/// Human-readable shape of a conditioning tuple, Table 3-style.
fn key_shape(key: &CondKey) -> String {
    let app = key.app().map(|f| f.kind);
    let net = key.net();
    match (app, net) {
        (None, None) => "Port".to_string(),
        (Some(kind), None) => format!("(Port, Port_{})", shorten(kind)),
        (None, Some(n)) => format!("(Port, {})", net_name(n)),
        (Some(kind), Some(n)) => format!("(Port, {}, Port_{})", net_name(n), shorten(kind)),
    }
}

fn shorten(kind: FeatureKind) -> &'static str {
    match kind {
        FeatureKind::Protocol => "Protocol",
        FeatureKind::HttpHeader => "HTTP-Header",
        FeatureKind::HttpBodyHash => "HTTP-Body-Hash",
        FeatureKind::HttpServer => "HTTP-Server",
        FeatureKind::HttpHtmlTitle => "HTTP-Title",
        FeatureKind::TlsCertHash => "TLS-Cert",
        FeatureKind::TlsCertOrganization => "TLS-Org",
        FeatureKind::TlsCertSubjectName => "TLS-Subject",
        FeatureKind::SshHostKey => "SSH-Key",
        FeatureKind::SshBanner => "SSH-Banner",
        FeatureKind::VncDesktopName => "VNC-Name",
        FeatureKind::SmtpBanner => "SMTP-Banner",
        FeatureKind::FtpBanner => "FTP-Banner",
        FeatureKind::ImapBanner => "IMAP-Banner",
        FeatureKind::Pop3Banner => "POP3-Banner",
        FeatureKind::CwmpHeader => "CWMP-Header",
        FeatureKind::CwmpBodyHash => "CWMP-Body",
        FeatureKind::TelnetBanner => "Telnet-Banner",
        FeatureKind::PptpVendor => "PPTP-Vendor",
        FeatureKind::MysqlServerVersion => "MySQL-Version",
        FeatureKind::MemcachedServerVersion => "Memcached-Version",
        FeatureKind::MssqlServerVersion => "MSSQL-Version",
        FeatureKind::IpmiBanner => "IPMI-Banner",
        FeatureKind::Slash16 | FeatureKind::Asn => "?",
    }
}

fn net_name(n: NetKey) -> &'static str {
    match n {
        NetKey::Slash(_, _) => "/16",
        NetKey::Asn(_) => "ASN",
    }
}

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.censys(net, 0.01);
    let run = run_gps(
        net,
        &dataset,
        &GpsConfig {
            step_prefix: 16,
            ..Default::default()
        },
    );

    // Attribute every seed service to its argmax tuple shape.
    let mut per_port_truth: HashMap<u16, u64> = HashMap::new();
    for host in &run.seed_host_records {
        for s in &host.services {
            *per_port_truth.entry(s.port.0).or_default() += 1;
        }
    }
    let num_ports = per_port_truth.len() as f64;

    let mut shape_services: HashMap<String, u64> = HashMap::new();
    let mut shape_normalized: HashMap<String, f64> = HashMap::new();
    let mut total_attributed = 0u64;
    for host in &run.seed_host_records {
        if host.services.len() < 2 {
            continue;
        }
        for a in &host.services {
            if let Some((_, key, _)) = run.model.best_predictor_for(host, a.port) {
                let shape = key_shape(&key);
                *shape_services.entry(shape.clone()).or_default() += 1;
                *shape_normalized.entry(shape).or_default() +=
                    1.0 / (per_port_truth[&a.port.0] as f64 * num_ports);
                total_attributed += 1;
            }
        }
    }

    let mut rows: Vec<(String, f64, f64)> = shape_normalized
        .iter()
        .map(|(shape, &norm)| {
            (
                shape.clone(),
                norm,
                shape_services[shape] as f64 / total_attributed.max(1) as f64,
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("== Table 3: top predictive feature shapes ==");
    let mut table = Table::new(["feature tuple", "normalized services", "services"]);
    for (shape, norm, all) in rows.iter().take(8) {
        table.row([
            shape.clone(),
            format!("{:.1}%", 100.0 * norm),
            format!("{:.1}%", 100.0 * all),
        ]);
    }
    table.print();

    // §6.6-style census of the rules list.
    let mut http_rules = 0usize;
    let mut total_rules = 0usize;
    for (key, targets) in run.rules.iter() {
        let is_http = key
            .app()
            .map(|f| f.kind.source_protocol() == Some(gps_types::Protocol::Http))
            .unwrap_or(false);
        total_rules += targets.len();
        if is_http {
            http_rules += targets.len();
        }
    }
    println!(
        "\nselected rules: {} ({} distinct tuples); HTTP-derived {:.1}%",
        run.rules.len(),
        run.rules.num_keys(),
        100.0 * http_rules as f64 / total_rules.max(1) as f64
    );

    let top_is_transport = rows
        .first()
        .map(|(s, _, _)| {
            s == "Port" || s.contains("Port_Protocol") || s.contains("/16") || s.contains("ASN")
        })
        .unwrap_or(false);
    report.claim(
        "tab3-top",
        "simple transport-anchored tuples dominate the most-predictive census",
        "(Port, Port_Protocol) 18.7% and Port 14.1% of normalized services",
        rows.iter()
            .take(3)
            .map(|(s, n, a)| format!("{s} {:.1}%/{:.1}%", 100.0 * n, 100.0 * a))
            .collect::<Vec<_>>()
            .join("; "),
        top_is_transport,
    );

    let interactions_present = rows
        .iter()
        .any(|(s, _, _)| s.contains("/16") || s.contains("ASN"));
    report.claim(
        "tab3-interactions",
        "app x network interaction tuples appear among the most predictive",
        "64 unique tuple shapes incl. (ASN, TLS cert), (ASN, SSH key), (ASN, FTP banner)",
        format!(
            "{} distinct shapes selected; network-bearing shapes present: {}",
            rows.len(),
            interactions_present
        ),
        interactions_present,
    );

    report
}
