//! Figure 2 — Finding services: GPS vs optimal-port-order exhaustive
//! probing vs the oracle, on both workloads and both metrics.
//!
//! Panels: (a) Censys all-services, (b) LZR all-services, (c) Censys
//! normalized, (d) LZR normalized. The paper's headline: GPS finds 92.5% of
//! all services (LZR, ports with >2 responsive IPs) and up to 94–98% on the
//! Censys workload, using order(s)-of-magnitude less bandwidth than optimal
//! port-order probing at low-to-mid coverage, with the saving shrinking as
//! coverage approaches the predictability ceiling.

use gps_baselines::{optimal_port_order_curve, oracle_curve};
use gps_core::{run_gps, DiscoveryCurve, GpsConfig, GpsRun};
use gps_synthnet::Internet;

use crate::{print_series, ratio, Report, Scenario};

pub struct Fig2Output {
    pub censys_run: GpsRun,
    pub censys_exhaustive: DiscoveryCurve,
    pub lzr_run: GpsRun,
    pub lzr_exhaustive: DiscoveryCurve,
    pub report: Report,
}

pub fn run(scenario: &Scenario, net: &Internet) -> Fig2Output {
    let mut report = Report::new();

    // ---------------------------------------------------- Censys workload
    let censys = scenario.censys(net, 0.02);
    let censys_run = run_gps(
        net,
        &censys,
        &GpsConfig {
            step_prefix: 16,
            ..Default::default()
        },
    );
    let censys_ex = optimal_port_order_curve(net, &censys, usize::MAX);
    let oracle = oracle_curve(&censys, net.universe_size(), 16);

    println!("== Figure 2a/2c: Censys workload ({}) ==", censys.name);
    print_series(
        "GPS (bandwidth, fraction of services)",
        &censys_run
            .curve
            .points
            .iter()
            .map(|p| (p.scans, p.fraction_all))
            .collect::<Vec<_>>(),
        16,
    );
    print_series(
        "exhaustive optimal order (bandwidth, fraction)",
        &censys_ex
            .points
            .iter()
            .map(|p| (p.scans, p.fraction_all))
            .collect::<Vec<_>>(),
        16,
    );
    print_series(
        "oracle (bandwidth, fraction)",
        &oracle
            .points
            .iter()
            .map(|p| (p.scans, p.fraction_all))
            .collect::<Vec<_>>(),
        4,
    );
    print_series(
        "GPS (bandwidth, normalized services)",
        &censys_run
            .curve
            .points
            .iter()
            .map(|p| (p.scans, p.fraction_normalized))
            .collect::<Vec<_>>(),
        16,
    );

    // Headline comparisons at the highest coverage GPS reaches.
    let gps_max = censys_run.fraction_of_services();
    let target = (gps_max - 0.002).max(0.5);
    let gps_b = censys_run
        .curve
        .scans_to_reach_all(target)
        .unwrap_or(f64::NAN);
    let ex_b = censys_ex.scans_to_reach_all(target).unwrap_or(f64::NAN);
    report.claim(
        "fig2a",
        format!(
            "Censys: GPS finds {:.1}% of services cheaper than optimal port-order",
            100.0 * target
        ),
        "94% of services at 21x less bandwidth (2K ports, 2% seed)",
        format!(
            "{:.1}% of services at {:.1}x less ({:.0} vs {:.0} scans)",
            100.0 * target,
            ratio(ex_b, gps_b),
            gps_b,
            ex_b
        ),
        ratio(ex_b, gps_b) > 1.5,
    );

    let gps_norm_max = censys_run.fraction_normalized();
    let norm_target = (gps_norm_max - 0.002).clamp(0.1, 0.46);
    let gps_nb = censys_run
        .curve
        .scans_to_reach_normalized(norm_target)
        .unwrap_or(f64::NAN);
    let ex_nb = censys_ex
        .scans_to_reach_normalized(norm_target)
        .unwrap_or(f64::NAN);
    report.claim(
        "fig2c",
        format!(
            "Censys: GPS finds {:.0}% of normalized services cheaper",
            100.0 * norm_target
        ),
        "46% of normalized services at 100x less bandwidth",
        format!(
            "{:.0}% at {:.1}x less ({:.0} vs {:.0} scans)",
            100.0 * norm_target,
            ratio(ex_nb, gps_nb),
            gps_nb,
            ex_nb
        ),
        ratio(ex_nb, gps_nb) > 3.0,
    );
    // Savings collapse past the predictability ceiling (paper: 100x at 46%
    // -> 1.5x at 67%): beyond its predictions GPS must fall back to random
    // residual probing (§6.3), whose efficiency is the remaining-service
    // density — compare it to exhaustive probing's marginal efficiency.
    let remaining = censys.test.total() - censys_run.found.len() as u64;
    let ports_count = censys.test.num_ports() as u64;
    let residual_density = remaining as f64 / (net.universe_size() * ports_count) as f64;
    let exhaustive_marginal = {
        // Services per probe for the next unscanned port in the optimal
        // order at GPS's ceiling.
        let at = censys_ex
            .points
            .iter()
            .position(|p| p.fraction_all >= gps_max)
            .unwrap_or(censys_ex.points.len() - 1);
        let window = &censys_ex.points[at.saturating_sub(1)..=at];
        let d_found = window.last().unwrap().found - window.first().unwrap().found;
        let d_probes =
            window.last().unwrap().discovery_probes - window.first().unwrap().discovery_probes;
        d_found as f64 / d_probes.max(1) as f64
    };
    report.claim(
        "fig2-tail",
        "past the predictability ceiling, GPS degrades to random probing and the savings vanish",
        "normalized savings shrink from 100x (46%) to 1.5x (67%); 96% of services save only 10x vs 131x at 92%",
        format!(
            "residual efficiency {residual_density:.2e} services/probe vs exhaustive marginal {exhaustive_marginal:.2e}"
        ),
        residual_density < exhaustive_marginal,
    );

    // ------------------------------------------------------- LZR workload
    let lzr = scenario.lzr(net, 0.40, 0.0625);
    let lzr_run = run_gps(
        net,
        &lzr,
        &GpsConfig {
            step_prefix: 16,
            ..Default::default()
        },
    );
    let lzr_ex = optimal_port_order_curve(net, &lzr, usize::MAX);

    println!("\n== Figure 2b/2d: LZR workload ({}) ==", lzr.name);
    print_series(
        "GPS (bandwidth, fraction of services)",
        &lzr_run
            .curve
            .points
            .iter()
            .map(|p| (p.scans, p.fraction_all))
            .collect::<Vec<_>>(),
        16,
    );
    print_series(
        "exhaustive optimal order (bandwidth, fraction)",
        &lzr_ex
            .points
            .iter()
            .map(|p| (p.scans, p.fraction_all))
            .collect::<Vec<_>>(),
        16,
    );

    let lzr_max = lzr_run.fraction_of_services();
    let lzr_target = (lzr_max - 0.002).max(0.5);
    let g = lzr_run
        .curve
        .scans_to_reach_all(lzr_target)
        .unwrap_or(f64::NAN);
    let e = lzr_ex.scans_to_reach_all(lzr_target).unwrap_or(f64::NAN);
    report.claim(
        "fig2b",
        format!(
            "LZR (all ports, >2 IPs): GPS reaches {:.1}% of services cheaper",
            100.0 * lzr_target
        ),
        "92.5% of services at 6x less bandwidth; 95% at 2x less",
        format!(
            "{:.1}% at {:.1}x less ({:.0} vs {:.0} scans)",
            100.0 * lzr_target,
            ratio(e, g),
            g,
            e
        ),
        ratio(e, g) > 1.0,
    );

    let lzr_norm = lzr_run.fraction_normalized();
    let nt = (lzr_norm - 0.002).max(0.05);
    let g = lzr_run
        .curve
        .scans_to_reach_normalized(nt)
        .unwrap_or(f64::NAN);
    let e = lzr_ex.scans_to_reach_normalized(nt).unwrap_or(f64::NAN);
    report.claim(
        "fig2d",
        format!(
            "LZR: GPS reaches {:.0}% of normalized services cheaper",
            100.0 * nt
        ),
        "17% of normalized services at 15x less; 38% at 1.7x less",
        format!(
            "{:.1}% at {:.1}x less ({:.0} vs {:.0} scans)",
            100.0 * nt,
            ratio(e, g),
            g,
            e
        ),
        ratio(e, g) > 1.0,
    );

    Fig2Output {
        censys_run,
        censys_exhaustive: censys_ex,
        lzr_run,
        lzr_exhaustive: lzr_ex,
        report,
    }
}
