//! Table 4 (Appendix C) — which network feature is most predictive.
//!
//! The paper configures GPS with all subnet sizes /16../23 plus the ASN,
//! then tallies which network feature wins the per-service argmax: ASN 36%,
//! /16 20%, with smaller subnets trailing. The shipped GPS configuration
//! keeps only /16 + ASN.

use std::collections::HashMap;

use gps_core::{run_gps, GpsConfig, NetFeature, NetKey};
use gps_synthnet::Internet;

use crate::{Report, Scenario, Table};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.lzr(net, 0.40, 0.0625);

    // Configure every candidate network feature (App. C's sweep).
    let net_features: Vec<NetFeature> = (16..=23)
        .map(NetFeature::Slash)
        .chain(std::iter::once(NetFeature::Asn))
        .collect();
    let run = run_gps(
        net,
        &dataset,
        &GpsConfig {
            step_prefix: 16,
            net_features,
            ..Default::default()
        },
    );

    // Tally argmax wins among *network-bearing* keys only (Eq. 6): for each
    // seed service, which network refinement is most predictive. Raw
    // empirical probabilities trivially favour the most specific subnet
    // (smaller cells saturate at 1.0 on tiny support), so we score by a
    // lower confidence bound — p minus one standard error — which is the
    // estimate that actually generalizes to unseen hosts.
    let mut wins: HashMap<String, u64> = HashMap::new();
    let mut total = 0u64;
    for host in &run.seed_host_records {
        if host.services.len() < 2 {
            continue;
        }
        for a in &host.services {
            let mut best: Option<(String, f64)> = None;
            for b in &host.services {
                if b.port == a.port {
                    continue;
                }
                for nk in &host.nets {
                    let key = gps_core::CondKey::PortNet(b.port, *nk);
                    let (p, support) = match run.model.stats(&key) {
                        Some(stats) => (stats.probability(a.port), stats.hosts.max(1) as f64),
                        None => continue,
                    };
                    if p <= 0.0 {
                        continue;
                    }
                    let lcb = p - (p * (1.0 - p) / support).sqrt() - 1.0 / support;
                    if best.as_ref().map(|(_, bp)| lcb > *bp).unwrap_or(true) {
                        let name = match nk {
                            NetKey::Slash(len, _) => format!("/{len}"),
                            NetKey::Asn(_) => "ASN".to_string(),
                        };
                        best = Some((name, lcb));
                    }
                }
            }
            if let Some((name, _)) = best {
                *wins.entry(name).or_default() += 1;
                total += 1;
            }
        }
    }

    let mut rows: Vec<(String, f64)> = wins
        .into_iter()
        .map(|(name, n)| (name, n as f64 / total.max(1) as f64))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("== Table 4: most predictive network feature (share of services) ==");
    let mut table = Table::new(["network feature", "% services most predictive", "paper"]);
    let paper: &[(&str, &str)] = &[
        ("ASN", "36%"),
        ("/16", "20%"),
        ("/18", "8%"),
        ("/19", "8%"),
        ("/17", "8%"),
        ("/20", "7%"),
        ("/21", "6%"),
        ("/22", "4%"),
        ("/23", "3%"),
    ];
    for (name, frac) in &rows {
        let p = paper
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or("-");
        table.row([name.clone(), format!("{:.1}%", 100.0 * frac), p.to_string()]);
    }
    table.print();

    let top2: Vec<&str> = rows.iter().take(2).map(|(n, _)| n.as_str()).collect();
    report.claim(
        "tab4",
        "ASN and /16 are the most predictive network features",
        "ASN 36%, /16 20%, smaller subnets each <=8%",
        format!(
            "top-2: {} — shares {}",
            top2.join(", "),
            rows.iter()
                .take(4)
                .map(|(n, f)| format!("{n}={:.0}%", 100.0 * f))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        top2.contains(&"ASN") && top2.contains(&"/16"),
    );

    report
}
