//! Table 2 — GPS performance breakdown.
//!
//! Reproduces the per-stage accounting: scanning bandwidth/wall-clock (via
//! the rate model), data transferred to/from the compute platform, compute
//! time on a single core vs the parallel engine, and the serverless cost of
//! the engine's bytes-processed.
//!
//! Paper headlines: the bottleneck is scanning bandwidth (12.3 days of
//! scans vs 13 minutes of BigQuery compute); single-core prediction takes
//! ~9.4 days vs 13 min parallel (our analog: measured single-core vs
//! multi-core wall-clock on the same model build); total engine cost ~75¢.

use std::time::Duration;

use gps_core::{run_gps, GpsConfig};
use gps_engine::{Backend, CostModel};
use gps_scan::{RateModel, ScanPhase};
use gps_synthnet::Internet;

use crate::{Report, Scenario, Table};

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 86400.0 {
        format!("{:.1} days", s / 86400.0)
    } else if s >= 3600.0 {
        format!("{:.1} hours", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.0} ms", s * 1000.0)
    }
}

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.lzr(net, 0.40, 0.0625);
    let rates = RateModel::default();
    let cost = CostModel::default();

    // Parallel run (the BigQuery analog) and a single-core rebuild of the
    // same model for the compute comparison.
    let run = run_gps(
        net,
        &dataset,
        &GpsConfig {
            step_prefix: 16,
            backend: Backend::parallel(),
            ..Default::default()
        },
    );
    let single = run_gps(
        net,
        &dataset,
        &GpsConfig {
            step_prefix: 16,
            backend: Backend::SingleCore,
            ..Default::default()
        },
    );

    // Data-transfer sizes: observation rows up, prediction rows down
    // (approximate row sizes mirroring the paper's GB figures).
    let seed_bytes = run.seed_observations_raw as u64 * 120;
    let priors_bytes = run.priors_services as u64 * 120;
    let predictions_bytes = run.predictions_total as u64 * 20;
    let engine_bytes = run.engine_ledger.bytes_processed();

    println!("== Table 2: GPS performance breakdown ==");
    let mut table = Table::new(["stage", "bandwidth/probes", "wall-clock", "data", "cost"]);
    table.row([
        "seed scan".to_string(),
        format!(
            "{:.1} scans",
            run.ledger
                .full_scans_phase(ScanPhase::Seed, net.universe_size())
        ),
        fmt_duration(rates.scan_time(ScanPhase::Seed, run.ledger.bytes(ScanPhase::Seed))),
        String::new(),
        String::new(),
    ]);
    table.row([
        "seed upload".to_string(),
        String::new(),
        fmt_duration(rates.transfer_time(seed_bytes)),
        format!("{:.2} GB", seed_bytes as f64 / 1e9),
        "0 c".to_string(),
    ]);
    table.row([
        "predict first service (compute)".to_string(),
        format!("{} keys", run.model_stats.distinct_keys),
        format!(
            "{} (1 core: {})",
            fmt_duration(run.timings.model_build + run.timings.priors_build),
            fmt_duration(single.timings.model_build + single.timings.priors_build)
        ),
        format!("{:.2} GB processed", engine_bytes as f64 / 1e9),
        format!("{:.2} c", cost.cost_cents(engine_bytes)),
    ]);
    table.row([
        "PFS scan (priors)".to_string(),
        format!(
            "{:.1} scans",
            run.ledger
                .full_scans_phase(ScanPhase::Priors, net.universe_size())
        ),
        fmt_duration(rates.scan_time(ScanPhase::Priors, run.ledger.bytes(ScanPhase::Priors))),
        String::new(),
        String::new(),
    ]);
    table.row([
        "PFS upload".to_string(),
        String::new(),
        fmt_duration(rates.transfer_time(priors_bytes)),
        format!("{:.2} GB", priors_bytes as f64 / 1e9),
        "0 c".to_string(),
    ]);
    table.row([
        "predict remaining services (compute)".to_string(),
        format!("{} rules", run.rules.len()),
        format!(
            "{} (1 core: {})",
            fmt_duration(run.timings.rules_build),
            fmt_duration(single.timings.rules_build)
        ),
        String::new(),
        String::new(),
    ]);
    table.row([
        "PRS download".to_string(),
        format!("{} predictions", run.predictions_total),
        fmt_duration(rates.transfer_time(predictions_bytes)),
        format!("{:.2} GB", predictions_bytes as f64 / 1e9),
        "0 c".to_string(),
    ]);
    table.row([
        "PRS scan (predictions)".to_string(),
        format!(
            "{:.2} scans",
            run.ledger
                .full_scans_phase(ScanPhase::Predict, net.universe_size())
        ),
        fmt_duration(rates.scan_time(ScanPhase::Predict, run.ledger.bytes(ScanPhase::Predict))),
        String::new(),
        String::new(),
    ]);
    let total_scan_time = rates.total_scan_time(&run.ledger);
    table.row([
        "TOTAL".to_string(),
        format!("{:.1} scans", run.total_scans()),
        format!(
            "scan {} + compute {}",
            fmt_duration(total_scan_time),
            fmt_duration(run.timings.compute_total())
        ),
        format!(
            "{:.2} GB",
            (seed_bytes + priors_bytes + predictions_bytes + engine_bytes) as f64 / 1e9
        ),
        format!("{:.2} c", cost.cost_cents(engine_bytes)),
    ]);
    table.print();

    // Claims.
    report.claim(
        "tab2-bottleneck",
        "GPS's bottleneck is scanning bandwidth, not computation",
        "12.3 days of scanning vs 13 minutes of (parallel) computation",
        format!(
            "simulated scanning {} vs measured computation {}",
            fmt_duration(total_scan_time),
            fmt_duration(run.timings.compute_total())
        ),
        total_scan_time > run.timings.compute_total() * 10,
    );

    let speedup = (single.timings.compute_total().as_secs_f64()
        / run.timings.compute_total().as_secs_f64().max(1e-9))
    .max(0.0);
    let workers = Backend::parallel().workers();
    report.claim(
        "tab2-parallel",
        "the prediction computation parallelizes",
        "5870x faster on a massively parallel engine (BigQuery); 5.6x faster than prior work on one core",
        format!(
            "{speedup:.1}x wall-clock on {workers} workers; results bit-identical              (backend equivalence is test-asserted; see gps-bench for kernel scaling)"
        ),
        speedup > 1.15 || workers <= 2,
    );

    report.claim(
        "tab2-seed-dominates",
        "the seed scan dominates scanning cost when collected from scratch",
        "collecting the seed is 97.5% of all scanning time; reusing one cuts runtime 94%",
        format!(
            "seed {:.1} of {:.1} total scans ({:.0}%)",
            run.ledger
                .full_scans_phase(ScanPhase::Seed, net.universe_size()),
            run.total_scans(),
            100.0
                * run
                    .ledger
                    .full_scans_phase(ScanPhase::Seed, net.universe_size())
                / run.total_scans()
        ),
        run.ledger
            .full_scans_phase(ScanPhase::Seed, net.universe_size())
            / run.total_scans()
            > 0.5,
    );

    report
}
