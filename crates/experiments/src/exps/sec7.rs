//! §7 — fundamental limitations: the ideal-conditions upper bound.
//!
//! The paper's stress test: give GPS a 95% seed (nearly all patterns
//! known), the /0 step size, and count *every* service on a host as found
//! the moment any service on it is found. Even then only ~80% of normalized
//! services are discoverable with less bandwidth than exhaustive scanning —
//! the remainder are randomly-configured hosts (FRITZ-style random ports,
//! forwarding) that no intelligent scanner can predict.

use std::collections::{HashMap, HashSet};

use gps_core::host::group_by_host;
use gps_core::priors::build_priors_list;
use gps_core::{lzr_dataset, CondModel, Interactions};
use gps_engine::{Backend, ExecLedger};
use gps_scan::{ScanConfig, ScanPhase, Scanner};
use gps_synthnet::Internet;

use crate::{Report, Scenario};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    // 95% seed / 5% test split over an *unfiltered* all-ports sample, so
    // randomly-configured services (random ports, forwarding) stay in the
    // denominator — they are exactly the floor §7 quantifies.
    let dataset = lzr_dataset(net, 0.25, 0.95, 0, 0, scenario.seed ^ 0x5EC7);

    // Train on the 95% side.
    let mut scanner = Scanner::new(
        net,
        ScanConfig {
            day: 0,
            ip_filter: dataset.visible_ips.clone(),
            port_filter: dataset.ports.clone(),
            ..Default::default()
        },
    );
    let ports = match &dataset.ports {
        Some(p) => (**p).clone(),
        None => net.all_ports(),
    };
    let seed_ips: Vec<gps_types::Ip> = {
        let mut v: Vec<u32> = dataset.seed_ips.iter().copied().collect();
        v.sort_unstable();
        v.into_iter().map(gps_types::Ip).collect()
    };
    let seed = scanner.scan_ip_set(ScanPhase::Seed, seed_ips.iter().copied(), &ports);
    let (seed, _) = gps_core::filter_pseudo_services(seed);
    let asn_of = |ip: gps_types::Ip| net.asn_of(ip).map(|a| a.0);
    let hosts = group_by_host(
        &seed,
        &[gps_core::NetFeature::Slash(16), gps_core::NetFeature::Asn],
        &asn_of,
    );
    let (model, _) = CondModel::build(
        &hosts,
        Interactions::ALL,
        Backend::parallel(),
        &ExecLedger::new(),
    );

    // /0 step: the priors list collapses to ports, scanned exhaustively in
    // coverage order. Count-at-first-discovery: a hit on any service of a
    // host credits all its test services.
    let priors = build_priors_list(&model, &hosts, 0);

    // Group the test ground truth by host.
    let mut test_by_host: HashMap<u32, Vec<gps_types::ServiceKey>> = HashMap::new();
    for key in dataset.test.services() {
        test_by_host.entry(key.ip.0).or_default().push(*key);
    }
    let per_port = dataset.test.per_port().clone();
    let num_ports = dataset.test.num_ports() as f64;

    let mut discovered_hosts: HashSet<u32> = HashSet::new();
    let mut norm_sum = 0.0;
    let mut found = 0u64;
    let mut probes = 0u64;
    let mut best_normalized_cheaper = 0.0f64;
    let universe = net.universe_size() as f64;

    let mut eval_scanner = Scanner::new(
        net,
        ScanConfig {
            day: 0,
            ip_filter: dataset.visible_ips.clone(),
            port_filter: dataset.ports.clone(),
            ..Default::default()
        },
    );
    for entry in &priors {
        probes += eval_scanner.allocated_size_within(entry.subnet);
        for obs in eval_scanner.scan_subnet_port(ScanPhase::Baseline, entry.subnet, entry.port) {
            if discovered_hosts.insert(obs.ip.0) {
                if let Some(services) = test_by_host.get(&obs.ip.0) {
                    for key in services {
                        found += 1;
                        norm_sum += 1.0 / per_port[&key.port.0] as f64;
                    }
                }
            }
        }
        let scans = probes as f64 / universe;
        let normalized = norm_sum / num_ports;
        // "Cheaper than exhaustive": exhaustive reaches `normalized` after
        // ~normalized × |ports| full scans (each port fully found when
        // scanned).
        let exhaustive_equiv = normalized * num_ports;
        if scans < exhaustive_equiv && normalized > best_normalized_cheaper {
            best_normalized_cheaper = normalized;
        }
    }

    let final_norm = norm_sum / num_ports;
    let final_all = found as f64 / dataset.test.total().max(1) as f64;
    println!("== §7: ideal-conditions upper bound ==");
    println!(
        "95% seed, /0 step, count-at-first-discovery: reached {:.1}% normalized / {:.1}% all",
        100.0 * final_norm,
        100.0 * final_all
    );
    println!(
        "max normalized reachable with less bandwidth than exhaustive: {:.1}%",
        100.0 * best_normalized_cheaper
    );

    report.claim(
        "sec7-bound",
        "even under ideal conditions, randomly-configured hosts bound discovery",
        "80% of normalized services discoverable cheaper than exhaustive scanning",
        format!("{:.1}%", 100.0 * best_normalized_cheaper),
        (0.5..0.98).contains(&best_normalized_cheaper),
    );

    report
}
