//! Figure 5 (Appendix D.1) — varying the scanning step size.
//!
//! Paper: a smaller scanning step saves bandwidth when initially finding
//! services but ultimately finds fewer; no configuration beats exhaustive
//! probing past ~82% of normalized services.

use gps_baselines::optimal_port_order_curve;
use gps_core::{run_gps, GpsConfig};
use gps_synthnet::Internet;

use crate::{print_series, Report, Scenario, Table};

/// Step sizes swept (the paper uses /0../20; /0../8 span multiple allocated
/// /16 blocks in our universe and behave like "scan everything").
pub const STEPS: [u8; 6] = [0, 8, 12, 16, 20, 24];

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.censys(net, 0.01);

    println!("== Figure 5: bandwidth vs normalized services per step size ==");
    let mut rows = Vec::new();
    for &step in &STEPS {
        let run = run_gps(
            net,
            &dataset,
            &GpsConfig {
                step_prefix: step,
                ..Default::default()
            },
        );
        let last = run.curve.last();
        print_series(
            &format!("step /{step} (normalized fraction, bandwidth)"),
            &run.curve
                .points
                .iter()
                .map(|p| (p.fraction_normalized, p.scans))
                .collect::<Vec<_>>(),
            8,
        );
        rows.push((
            step,
            last.scans,
            last.fraction_normalized,
            last.fraction_all,
            last.precision,
        ));
    }

    let mut table = Table::new([
        "step",
        "total scans",
        "normalized found",
        "all found",
        "end precision",
    ]);
    for &(step, scans, norm, all, prec) in &rows {
        table.row([
            format!("/{step}"),
            format!("{scans:.1}"),
            format!("{:.1}%", 100.0 * norm),
            format!("{:.1}%", 100.0 * all),
            format!("{prec:.4}"),
        ]);
    }
    table.print();

    // Claims: smaller steps cost less and find less.
    let big = rows.iter().find(|r| r.0 == 16).unwrap();
    let small = rows.iter().find(|r| r.0 == 24).unwrap();
    report.claim(
        "fig5-tradeoff",
        "smaller scanning step: less bandwidth, fewer services found",
        "/20 uses ~10x less bandwidth than /12 at 25% normalized but plateaus lower",
        format!(
            "/24: {:.0} scans, {:.1}% normalized vs /16: {:.0} scans, {:.1}% normalized",
            small.1,
            100.0 * small.2,
            big.1,
            100.0 * big.2
        ),
        small.1 < big.1 && small.2 < big.2,
    );
    report.claim(
        "fig5-precision",
        "smaller steps increase precision",
        "as the step size decreases, the precision of finding services increases",
        format!("/24 precision {:.4} vs /16 precision {:.4}", small.4, big.4),
        small.4 > big.4,
    );

    // No configuration beats exhaustive past a normalized ceiling.
    let exhaustive = optimal_port_order_curve(net, &dataset, usize::MAX);
    let mut best_beating = 0.0f64;
    for &(step, _, _, _, _) in &rows {
        let run = run_gps(
            net,
            &dataset,
            &GpsConfig {
                step_prefix: step,
                ..Default::default()
            },
        );
        for p in &run.curve.points {
            if p.fraction_normalized > best_beating {
                let ex = exhaustive.scans_to_reach_normalized(p.fraction_normalized);
                if ex.map(|e| e > p.scans).unwrap_or(true) {
                    best_beating = p.fraction_normalized;
                }
            }
        }
    }
    report.claim(
        "fig5-ceiling",
        "maximum normalized coverage reachable with bandwidth better than exhaustive",
        "no GPS configuration exceeds 82% of normalized services cheaper than exhaustive",
        format!(
            "best configuration reaches {:.1}% normalized while cheaper",
            100.0 * best_beating
        ),
        best_beating < 0.9,
    );

    report
}
