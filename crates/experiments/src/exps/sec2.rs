//! §2 — verifying that IPv6 target-generation algorithms do not transfer
//! to IPv4 service prediction.
//!
//! The paper modifies Entropy/IP and EIP to emit IPv4 candidates (one octet
//! at a time), trains a model per port on 1,000 sampled addresses, lets
//! each model generate 1M candidates per port (an order of magnitude more
//! than the responsive population of 90% of ports), and finds the combined
//! candidates recover only 19% of services.

use gps_baselines::{EipModel, EntropyIpModel};
use gps_synthnet::Internet;
use gps_types::{Ip, Port, Rng};

use crate::{Report, Scenario};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.lzr(net, 0.40, 0.0625);

    // Candidate budget per port: the paper's 1M per port over 3.7B
    // addresses, scaled to the simulated universe.
    let budget = ((net.universe_size() as f64 / 3.7e9) * 1_000_000.0).ceil() as usize;
    let budget = budget.max(500);

    // Evaluate over the test set's populated ports.
    let mut ports: Vec<(Port, u64)> = dataset
        .test
        .per_port()
        .iter()
        .map(|(&p, &c)| (Port(p), c))
        .collect();
    ports.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let eval_ports: Vec<Port> = ports
        .iter()
        .take(if scenario.quick { 40 } else { 400 })
        .map(|&(p, _)| p)
        .collect();

    let mut rng = Rng::new(scenario.seed ^ 0x5EC2);
    let mut found = 0u64;
    let mut truth_total = 0u64;
    let mut probes = 0u64;
    for &port in &eval_ports {
        // Train on up to 1,000 seed-side responsive addresses.
        let train: Vec<Ip> = net
            .ips_on_port(port)
            .iter()
            .filter(|ip| dataset.seed_ips.contains(ip))
            .take(1000)
            .map(|&ip| Ip(ip))
            .collect();
        truth_total += dataset.test.port_count(port);
        if train.len() < 3 {
            continue;
        }
        let entropy = EntropyIpModel::train(&train);
        let eip = EipModel::train(&train);
        let mut candidates: std::collections::HashSet<Ip> =
            entropy.generate(budget / 2, &mut rng).into_iter().collect();
        candidates.extend(eip.generate(budget / 2, &mut rng));
        probes += candidates.len() as u64;
        for ip in candidates {
            if dataset.test.contains(&gps_types::ServiceKey::new(ip, port)) {
                found += 1;
            }
        }
    }

    let coverage = found as f64 / truth_total.max(1) as f64;
    println!("== §2: TGA verification (Entropy/IP + EIP on IPv4) ==");
    println!(
        "{} ports evaluated, {} candidates probed: found {:.1}% of test services",
        eval_ports.len(),
        probes,
        100.0 * coverage
    );

    report.claim(
        "sec2-tga",
        "per-octet TGAs recover only a small fraction of IPv4 services",
        "Entropy/IP and EIP combined find 19% of services",
        format!(
            "{:.1}% of services across {} ports",
            100.0 * coverage,
            eval_ports.len()
        ),
        coverage < 0.5,
    );

    report
}
