//! Figure 6 (Appendix D.2) — varying the seed size.
//!
//! Paper: above a bandwidth budget of ~30 scans, a 2% seed always finds the
//! most normalized services (larger seeds see the uncommon patterns that
//! dominate uncommon ports), while the fraction of *all* services found is
//! insensitive to seed size (popular-port patterns are learnable from tiny
//! seeds).

use gps_core::{run_gps, GpsConfig};
use gps_synthnet::Internet;

use crate::{print_series, Report, Scenario, Table};

/// Seed fractions swept. The paper sweeps 0.1%–2% of 3.7B addresses; our
/// scaled universe needs proportionally larger fractions for the same
/// per-pattern sample counts (DESIGN.md §1).
pub const SEED_FRACTIONS: [f64; 4] = [0.005, 0.01, 0.02, 0.05];

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();

    let mut rows = Vec::new();
    println!("== Figure 6: seed-size sweep ==");
    for &frac in &SEED_FRACTIONS {
        let dataset = scenario.censys(net, frac);
        let run = run_gps(
            net,
            &dataset,
            &GpsConfig {
                step_prefix: 16,
                ..Default::default()
            },
        );
        let last = run.curve.last();
        print_series(
            &format!("seed {:.1}% (bandwidth, normalized)", frac * 100.0),
            &run.curve
                .points
                .iter()
                .map(|p| (p.scans, p.fraction_normalized))
                .collect::<Vec<_>>(),
            8,
        );
        rows.push((
            frac,
            last.scans,
            last.fraction_normalized,
            last.fraction_all,
        ));
    }

    let mut table = Table::new(["seed", "total scans", "normalized found", "all found"]);
    for &(frac, scans, norm, all) in &rows {
        table.row([
            format!("{:.1}%", 100.0 * frac),
            format!("{scans:.1}"),
            format!("{:.1}%", 100.0 * norm),
            format!("{:.1}%", 100.0 * all),
        ]);
    }
    table.print();

    // Normalized coverage strictly benefits from larger seeds.
    let norm_monotone = rows.windows(2).all(|w| w[1].2 >= w[0].2 - 0.01);
    report.claim(
        "fig6a",
        "larger seeds find more normalized services",
        "for budgets above 30 scans, the largest seed always finds the most normalized services",
        format!(
            "normalized: {}",
            rows.iter()
                .map(|r| format!("{:.1}%@{:.1}%seed", 100.0 * r.2, 100.0 * r.0))
                .collect::<Vec<_>>()
                .join(" -> ")
        ),
        norm_monotone,
    );

    // All-services coverage is comparatively insensitive.
    let all_spread = rows.iter().map(|r| r.3).fold(f64::NEG_INFINITY, f64::max)
        - rows.iter().map(|r| r.3).fold(f64::INFINITY, f64::min);
    let norm_spread = rows.iter().map(|r| r.2).fold(f64::NEG_INFINITY, f64::max)
        - rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    report.claim(
        "fig6b",
        "fraction of all services is much less sensitive to seed size than normalized",
        "seed size does not substantially affect the fraction of overall services found",
        format!(
            "all-services spread {:.1}pp vs normalized spread {:.1}pp across seeds",
            100.0 * all_spread,
            100.0 * norm_spread
        ),
        all_spread < norm_spread,
    );

    report
}
