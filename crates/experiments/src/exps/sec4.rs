//! §4 — the three categories of predictive features, measured.
//!
//! 1. *Port usage is correlated*: for every port, ≥25% of its hosts also
//!    respond on a second port.
//! 2. *Networks predict services*: 81% of services share (port, /16) with
//!    another service; the fraction collapses on unpopular ports.
//! 3. *Port forwarding pollutes the tail*: ≥55% of services on the most
//!    uncommon ports carry the forwarding TTL signature (§7's measurement,
//!    reported here with the other ground-truth statistics).

use gps_synthnet::{stats, Internet, PortCensus};

use crate::{Report, Scenario};

pub fn run(_scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let census = PortCensus::new(net, 0);

    // 1 — second-port co-occurrence.
    let fractions = stats::second_port_fraction(net, 0);
    let populated: Vec<f64> = fractions
        .iter()
        .filter(|&&(p, _)| census.count(p) >= 5)
        .map(|&(_, f)| f)
        .collect();
    let below = populated.iter().filter(|&&f| f < 0.25).count();
    println!("== §4: predictive-feature measurements ==");
    println!(
        "second-port fraction: {} populated ports, {} below 25% ({:.1}%)",
        populated.len(),
        below,
        100.0 * below as f64 / populated.len().max(1) as f64
    );
    report.claim(
        "sec4-ports",
        "for (nearly) every port, >=25% of hosts respond on a second port",
        "at least 25% on every port",
        format!(
            "{:.1}% of populated ports meet the 25% floor",
            100.0 * (1.0 - below as f64 / populated.len().max(1) as f64)
        ),
        (below as f64) < populated.len() as f64 * 0.15,
    );

    // 2 — /16 co-occurrence, head vs tail.
    let co = stats::slash16_cooccurrence(net, 0);
    let head: f64 = co.by_port.iter().take(20).map(|&(_, f, _)| f).sum::<f64>() / 20.0;
    let tail_ports: Vec<f64> = co
        .by_port
        .iter()
        .rev()
        .take(co.by_port.len() / 4)
        .map(|&(_, f, _)| f)
        .collect();
    let tail = tail_ports.iter().sum::<f64>() / tail_ports.len().max(1) as f64;
    println!(
        "/16 co-occurrence: overall {:.1}%, top-20 ports {:.1}%, bottom-quartile ports {:.1}%",
        100.0 * co.overall_fraction,
        100.0 * head,
        100.0 * tail
    );
    report.claim(
        "sec4-network",
        "most services co-occur on (port, /16); the fraction collapses on unpopular ports",
        "81% overall, as low as 0.02% on unpopular ports",
        format!(
            "{:.0}% overall; head {:.0}% vs tail {:.0}%",
            100.0 * co.overall_fraction,
            100.0 * head,
            100.0 * tail
        ),
        co.overall_fraction > 0.6 && head > tail,
    );

    // 3 — forwarding signature in the tail.
    let fwd = stats::forwarded_fraction_uncommon(net, 0, census.num_ports() / 100);
    println!(
        "forwarding TTL signature on the 99% most uncommon ports: {:.1}%",
        100.0 * fwd
    );
    report.claim(
        "sec4-forwarding",
        "a majority of services on uncommon ports show the forwarding TTL signature",
        "at least 55% across 99% of the most uncommon ports",
        format!("{:.1}%", 100.0 * fwd),
        fwd > 0.4,
    );

    // Bonus §3 context: top-10 port share (motivates the normalized metric).
    println!(
        "top-10 ports hold {:.1}% of services",
        100.0 * census.share_of_top(10)
    );
    report.claim(
        "sec4-longtail",
        "services occupy a long tail: top-10 ports hold a minority of services",
        "5% of all services live on the top 10 ports (65K-port universe)",
        format!(
            "{:.0}% on top-10 of a {}-port universe ({} populated ports)",
            100.0 * census.share_of_top(10),
            net.port_space(),
            census.num_ports()
        ),
        census.share_of_top(10) < 0.5,
    );

    report
}
