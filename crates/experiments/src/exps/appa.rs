//! Appendix A — the hybrid-recommender baseline.
//!
//! The paper adapts LightFM to recommend ports to IPs: with only user
//! (network) and item (port) features available — application-layer
//! features cannot attach to interactions — the model tops out at 47% of
//! all services and 1.5% of normalized services even when granted 100
//! predictions per address, consistently below exhaustive probing.

use gps_baselines::{Recommender, RecommenderParams};
use gps_synthnet::Internet;
use gps_types::{Ip, Rng};

use crate::{Report, Scenario};

pub fn run(scenario: &Scenario, net: &Internet) -> Report {
    let mut report = Report::new();
    let dataset = scenario.lzr(net, 0.40, 0.0625);

    // Train on the seed side's true services.
    let interactions: Vec<(Ip, gps_types::Port, Option<u32>)> = dataset
        .seed_ips
        .iter()
        .filter_map(|&ip| net.host(Ip(ip)).map(|h| (Ip(ip), h)))
        .flat_map(|(ip, host)| {
            let asn = net.asn_of(ip).map(|a| a.0);
            host.services
                .iter()
                .filter(|s| s.alive(0))
                .map(move |s| (ip, s.port, asn))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut rng = Rng::new(scenario.seed ^ 0xA99A);
    let params = RecommenderParams {
        epochs: if scenario.quick { 4 } else { 8 },
        ..Default::default()
    };
    let model = Recommender::train(&interactions, params, &mut rng);

    // Evaluate on a sample of test hosts. The paper grants 100 guesses per
    // address out of 65,536 ports; scaled to the simulated port space that
    // is ~20 guesses (same fraction of the port spectrum).
    let mut test_hosts: Vec<u32> = dataset
        .test
        .services()
        .iter()
        .map(|k| k.ip.0)
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .collect();
    test_hosts.sort_unstable();
    let eval_n = if scenario.quick { 500 } else { 4000 };
    let stride = (test_hosts.len() / eval_n).max(1);
    let eval_hosts: Vec<u32> = test_hosts.iter().step_by(stride).copied().collect();

    let mut total = 0u64;
    let mut hit = 0u64;
    let mut per_port: std::collections::HashMap<u16, (u64, u64)> = Default::default();
    for &ip in &eval_hosts {
        let host = net.host(Ip(ip)).expect("test host");
        let guesses = ((net.port_space() as f64 / 65536.0) * 100.0).ceil() as usize;
        let top: std::collections::HashSet<u16> = model
            .top_ports(Ip(ip), net.asn_of(Ip(ip)).map(|a| a.0), guesses)
            .into_iter()
            .map(|p| p.0)
            .collect();
        for s in &host.services {
            if !s.alive(0) || dataset.test.port_count(s.port) == 0 {
                continue;
            }
            total += 1;
            let e = per_port.entry(s.port.0).or_default();
            e.0 += 1;
            if top.contains(&s.port.0) {
                hit += 1;
                e.1 += 1;
            }
        }
    }
    let coverage = hit as f64 / total.max(1) as f64;
    let normalized = per_port
        .values()
        .map(|&(t, h)| h as f64 / t as f64)
        .sum::<f64>()
        / dataset.test.num_ports().max(1) as f64;

    println!("== Appendix A: recommender baseline ==");
    println!(
        "evaluated {} test hosts, {} services: top-100 recommendations cover {:.1}% of services, {:.1}% normalized",
        eval_hosts.len(),
        total,
        100.0 * coverage,
        100.0 * normalized
    );

    report.claim(
        "appA-services",
        "the recommender finds a minority of services despite 100 guesses per IP",
        "maximum of 47% of all services (100 of 65K guesses ~ 19 of 12K here)",
        format!("{:.1}% of services", 100.0 * coverage),
        coverage < 0.75,
    );
    report.claim(
        "appA-normalized",
        "the recommender is helpless on uncommon ports",
        "1.5% of normalized services",
        format!("{:.1}% of normalized services", 100.0 * normalized),
        normalized < 0.25,
    );

    report
}
