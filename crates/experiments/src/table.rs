//! Minimal fixed-width ASCII table printer for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Render to a string (also used by tests).
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format helpers for common cell types.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["port", "count"]);
        t.row(["80", "12345"]);
        t.row(["65535", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("port"));
        assert!(lines[2].starts_with("80"));
        // Columns align: "count" column starts at the same offset everywhere.
        let col = lines[0].find("count").unwrap();
        assert_eq!(&lines[2][col..col + 5], "12345");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.925), "92.5%");
    }
}
