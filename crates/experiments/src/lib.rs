//! # gps-experiments
//!
//! Shared harness for the per-figure/per-table experiment binaries. Each
//! binary regenerates one table or figure from the paper's evaluation; this
//! crate holds the common scenario definitions (universe sizes, dataset
//! recipes), a plain-text table/series printer, and paper-vs-measured
//! reporting helpers.
//!
//! Conventions:
//! - every binary accepts `--quick` (small universe, fast smoke run) and
//!   `--seed N`;
//! - bandwidth is always reported in the paper's unit, *number of 100%
//!   scans* of the simulated address space;
//! - each binary ends by printing `paper:` vs `measured:` lines for the
//!   headline claims it reproduces, which `report` aggregates into
//!   EXPERIMENTS.md.

use std::time::Instant;

use gps_core::{censys_dataset, lzr_dataset, Dataset};
use gps_synthnet::{Internet, UniverseConfig};

pub mod exps;
pub mod table;

pub use table::Table;

/// Scenario sizing shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    pub seed: u64,
    pub quick: bool,
}

impl Scenario {
    /// Parse `--quick` / `--seed N` from argv.
    pub fn from_args() -> Scenario {
        let mut scenario = Scenario {
            seed: 0xC0FFEE,
            quick: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => scenario.quick = true,
                "--seed" => {
                    scenario.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed requires a number");
                }
                "--help" | "-h" => {
                    eprintln!("usage: <experiment> [--quick] [--seed N]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        scenario
    }

    /// The experiment universe (32 /16s standard; 6 in quick mode).
    pub fn universe(&self) -> Internet {
        let config = if self.quick {
            UniverseConfig {
                num_slash16: 6,
                ..UniverseConfig::tiny(self.seed)
            }
        } else {
            UniverseConfig::standard(self.seed)
        };
        let t = Instant::now();
        let net = Internet::generate(&config);
        eprintln!(
            "[universe] {} addresses, {} hosts, {} services, {} middleboxes ({:.1}s)",
            net.universe_size(),
            net.host_ips().len(),
            net.total_services(),
            net.pseudo_hosts().len(),
            t.elapsed().as_secs_f64()
        );
        net
    }

    /// The Censys-style workload: 100% visibility of the top `k` ports.
    /// Default (paper): top 2K ports, 2% seed. Our universe populates fewer
    /// distinct ports, so "top 2K" saturates to every structured port,
    /// matching the paper's intent.
    pub fn censys(&self, net: &Internet, seed_fraction: f64) -> Dataset {
        let top_k = if self.quick { 200 } else { 2000 };
        censys_dataset(net, top_k, seed_fraction, 0, self.seed ^ 0xDA7A)
    }

    /// The LZR-style workload: a random-address sample across all ports,
    /// half seed / half test, ports filtered to >2 responsive IPs.
    ///
    /// The paper samples 1% of 3.7B addresses (≈37M); scaled to our ≈2M
    /// universe that sample would contain too few hosts to exhibit any
    /// pattern, so the default sample is 20% (documented per experiment in
    /// EXPERIMENTS.md). Ratios are unaffected: bandwidth is normalized by
    /// universe size.
    pub fn lzr(&self, net: &Internet, sample_fraction: f64, seed_share: f64) -> Dataset {
        lzr_dataset(net, sample_fraction, seed_share, 2, 0, self.seed ^ 0x12E)
    }
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Claim {
    pub id: &'static str,
    pub description: String,
    pub paper: String,
    pub measured: String,
    pub ok: bool,
}

/// Collects claims and prints the standard footer.
#[derive(Debug, Default)]
pub struct Report {
    pub claims: Vec<Claim>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn claim(
        &mut self,
        id: &'static str,
        description: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) {
        self.claims.push(Claim {
            id,
            description: description.into(),
            paper: paper.into(),
            measured: measured.into(),
            ok,
        });
    }

    /// Print the paper-vs-measured footer.
    pub fn print(&self) {
        println!();
        println!("== paper vs measured ==");
        for c in &self.claims {
            println!(
                "[{}] {}\n    paper:    {}\n    measured: {}  ({})",
                c.id,
                c.description,
                c.paper,
                c.measured,
                if c.ok { "shape holds" } else { "DIVERGES" }
            );
        }
        let bad = self.claims.iter().filter(|c| !c.ok).count();
        println!(
            "\n{} of {} claims hold{}",
            self.claims.len() - bad,
            self.claims.len(),
            if bad > 0 {
                " — see DIVERGES lines"
            } else {
                ""
            }
        );
    }
}

/// Format a bandwidth-saving multiple ("131x less bandwidth").
pub fn ratio(baseline: f64, system: f64) -> f64 {
    if system <= 0.0 {
        f64::INFINITY
    } else {
        baseline / system
    }
}

/// Pretty curve printer: a compact series of (bandwidth, value) pairs.
pub fn print_series(name: &str, points: &[(f64, f64)], max_rows: usize) {
    println!("-- {name} --");
    let stride = (points.len() / max_rows.max(1)).max(1);
    for (i, (x, y)) in points.iter().enumerate() {
        if i % stride == 0 || i == points.len() - 1 {
            println!("  {x:>12.4}  {y:>8.4}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(10.0, 2.0), 5.0);
        assert!(ratio(10.0, 0.0).is_infinite());
    }

    #[test]
    fn quick_universe_is_small() {
        let s = Scenario {
            seed: 5,
            quick: true,
        };
        let net = s.universe();
        assert_eq!(net.universe_size(), 6 * 65536);
        let ds = s.censys(&net, 0.05);
        assert!(ds.test.total() > 0);
        let lzr = s.lzr(&net, 0.2, 0.5);
        assert!(lzr.test.total() > 0);
    }

    #[test]
    fn report_counts_divergences() {
        let mut r = Report::new();
        r.claim("x", "d", "1", "1", true);
        r.claim("y", "d", "2", "3", false);
        assert_eq!(r.claims.iter().filter(|c| !c.ok).count(), 1);
    }
}
