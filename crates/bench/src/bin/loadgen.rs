//! Synthetic query-traffic generator for the prediction-serving subsystem.
//!
//! Trains one or more models on quick universes, stands up a
//! [`PredictionServer`] (a model registry when `--models > 1`), replays
//! deterministic query traffic from client threads, and reports sustained
//! throughput plus p50/p99 latency. Two transports:
//!
//! - `engine` (default): clients call the in-process server API — measures
//!   the shard/cache/batching engine itself;
//! - `tcp`: clients speak the length-prefixed JSON frame protocol to a
//!   loopback listener — measures the full wire stack.
//!
//! With `--models N` (N > 1) each request targets one of N registered
//! models (round-robin-ish by rng), each trained on its own universe and
//! queried with traffic anchored in that universe — the mixed-model
//! pattern a one-server-many-universes deployment sees. Per-model request
//! counts are reported at the end.
//!
//! Usage: `cargo run --release -p gps-bench --bin loadgen -- [options]`
//!
//! ```text
//! --shards N      server shards                    (default 8)
//! --clients N     concurrent client threads        (default 8)
//! --requests N    total requests                   (default 400000)
//! --batch N       queries per batch request, 0=single (default 0)
//! --subnets N     distinct query /16s per model, controls hit rate (default 64)
//! --models N      registered models, mixed traffic (default 1)
//! --warm          pre-touch every subnet before timing (default on)
//! --no-warm       measure cold, misses included
//! --tcp           use the TCP transport
//! --seed N        universe seed (model i uses seed+i) (default 77)
//! ```

use std::sync::Arc;
use std::time::Instant;

use gps_core::{censys_dataset, run_gps, GpsConfig, ModelSnapshot};
use gps_serve::{PredictionServer, Query, ServableModel, ServeConfig, DEFAULT_MODEL_ID};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::rng::Rng;
use gps_types::Ip;

struct Options {
    shards: usize,
    clients: usize,
    requests: u64,
    batch: usize,
    subnets: usize,
    models: usize,
    warm: bool,
    tcp: bool,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            shards: 8,
            clients: 8,
            requests: 400_000,
            batch: 0,
            subnets: 64,
            models: 1,
            warm: true,
            tcp: false,
            seed: 77,
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--shards" => options.shards = num(&value("--shards")?)?,
            "--clients" => options.clients = num(&value("--clients")?)?,
            "--requests" => options.requests = num(&value("--requests")?)?,
            "--batch" => options.batch = num(&value("--batch")?)?,
            "--subnets" => options.subnets = num(&value("--subnets")?)?,
            "--models" => options.models = num(&value("--models")?)?,
            "--warm" => options.warm = true,
            "--no-warm" => options.warm = false,
            "--tcp" => options.tcp = true,
            "--seed" => options.seed = num(&value("--seed")?)?,
            "--help" | "-h" => {
                println!("see the module docs in crates/bench/src/bin/loadgen.rs");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if options.clients == 0 || options.requests == 0 || options.models == 0 {
        return Err("--clients, --requests and --models must be positive".to_string());
    }
    Ok(options)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse {s:?}"))
}

/// One trained model plus the query anchors of its universe.
struct TrainedModel {
    id: String,
    model: Option<ServableModel>,
    /// Real host IPs: cold queries against them hit trained priors. The
    /// query mix draws random low bits within each anchor's /16.
    host_ips: Vec<u32>,
}

/// One batch-unit of client traffic: which model, which queries. Single
/// mode uses units of one query.
struct TrafficUnit {
    model: usize,
    queries: Vec<Query>,
}

/// Deterministic query mix over `subnets` distinct /16s of one model's
/// universe: 80% cold queries, 20% warm (one open port of evidence).
fn make_unit(anchors: &[Ip], count: usize, rng: &mut Rng) -> Vec<Query> {
    (0..count)
        .map(|_| {
            let anchor = *rng.choose(anchors);
            // Same /16, random low bits: exercises the per-subnet cache.
            let ip = Ip((anchor.0 & 0xFFFF_0000) | (rng.next_u32() & 0xFFFF));
            let mut query = Query::new(ip);
            if rng.chance(0.2) {
                query = query.with_open([[80u16, 443, 22][rng.gen_range(3) as usize]]);
            }
            query.top = 8;
            query
        })
        .collect()
}

struct ClientReport {
    completed: u64,
    latencies_ns: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // Train one model per universe; model i gets seed+i. A single model
    // keeps the pre-registry id so measurements are comparable.
    let mut trained: Vec<TrainedModel> = Vec::with_capacity(options.models);
    for i in 0..options.models as u64 {
        let seed = options.seed + i;
        println!("training model on quick universe (seed {seed})...");
        let net = Internet::generate(&UniverseConfig::tiny(seed));
        let dataset = censys_dataset(&net, 200, 0.05, 0, 1);
        let config = GpsConfig {
            seed_fraction: 0.05,
            step_prefix: 16,
            ..GpsConfig::default()
        };
        let run = run_gps(&net, &dataset, &config);
        let snapshot = ModelSnapshot::from_run(&run, &config, seed);
        println!(
            "  {} model keys, {} rules, {} priors",
            snapshot.manifest.distinct_keys,
            snapshot.manifest.num_rules,
            snapshot.manifest.num_priors
        );
        trained.push(TrainedModel {
            id: if options.models == 1 {
                DEFAULT_MODEL_ID.to_string()
            } else {
                format!("seed{seed}")
            },
            model: Some(ServableModel::from_snapshot(snapshot)),
            host_ips: net.host_ips().to_vec(),
        });
    }

    let server = Arc::new(
        PredictionServer::start_named(
            trained
                .iter_mut()
                .map(|t| (t.id.clone(), t.model.take().expect("trained once")))
                .collect(),
            ServeConfig {
                shards: options.shards,
                ..ServeConfig::default()
            },
        )
        .expect("registry starts"),
    );
    let ids: Vec<String> = trained.iter().map(|t| t.id.clone()).collect();
    // Single-model runs stay on the id-less fast path (pre-registry
    // numbers stay comparable); mixed runs address models by id.
    let id_of = |model: usize| -> Option<&str> {
        if options.models > 1 {
            Some(ids[model].as_str())
        } else {
            None
        }
    };

    // TCP transport: listener + per-client connections.
    let tcp_addr = if options.tcp {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let server = server.clone();
        std::thread::spawn(move || gps_serve::serve_tcp(server, listener));
        Some(addr)
    } else {
        None
    };

    // Pre-generate per-client traffic so generation cost stays outside the
    // timed section. Each unit is one request (or one batch frame) against
    // one model, anchored in that model's universe.
    let per_client = (options.requests / options.clients as u64) as usize;
    let unit_size = options.batch.max(1);
    let mut rng = Rng::new(options.seed ^ 0x10AD);
    let anchors: Vec<Vec<Ip>> = trained
        .iter()
        .map(|t| {
            (0..options.subnets.max(1))
                .map(|_| Ip(t.host_ips[rng.gen_range(t.host_ips.len() as u64) as usize]))
                .collect()
        })
        .collect();
    let traffic: Vec<Vec<TrafficUnit>> = (0..options.clients)
        .map(|_| {
            let mut units = Vec::new();
            let mut generated = 0usize;
            while generated < per_client {
                let model = rng.gen_range(options.models as u64) as usize;
                let count = unit_size.min(per_client - generated);
                units.push(TrafficUnit {
                    model,
                    queries: make_unit(&anchors[model], count, &mut rng),
                });
                generated += count;
            }
            units
        })
        .collect();

    if options.warm {
        // Touch every distinct cache slot the timed traffic will hit
        // (dedup on the cache key granularity: model, subnet, evidence,
        // top) so the timed section measures the cache-warm steady state.
        let mut seen = std::collections::HashSet::new();
        for unit in traffic.iter().flatten() {
            let warmup: Vec<Query> = unit
                .queries
                .iter()
                .filter(|q| {
                    seen.insert((
                        unit.model,
                        q.ip.0 & 0xFFFF_0000,
                        q.open.clone(),
                        q.asn,
                        q.top,
                    ))
                })
                .cloned()
                .collect();
            if warmup.is_empty() {
                continue;
            }
            match id_of(unit.model) {
                None => {
                    server.predict_batch(warmup);
                }
                Some(id) => {
                    server.predict_batch_for(id, warmup).expect("warmup model");
                }
            }
        }
    }

    println!(
        "replaying {} requests over {} clients ({} shards, {} model(s), batch={}, transport={})...",
        per_client * options.clients,
        options.clients,
        options.shards,
        options.models,
        options.batch,
        if options.tcp { "tcp" } else { "engine" },
    );
    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = traffic
            .into_iter()
            .map(|units| {
                let server = server.clone();
                let batched = options.batch > 1;
                let id_of = &id_of;
                scope.spawn(move || {
                    let mut latencies_ns = Vec::with_capacity(units.len());
                    let mut completed = 0u64;
                    let mut client = tcp_addr
                        .map(|addr| gps_serve::Client::connect(addr).expect("connect loadgen"));
                    for unit in units {
                        let id = id_of(unit.model);
                        let t0 = Instant::now();
                        let answered = match (&mut client, batched) {
                            (Some(client), true) => client
                                .predict_batch_on(id, &unit.queries)
                                .expect("batch reply")
                                .len() as u64,
                            (Some(client), false) => {
                                for query in &unit.queries {
                                    client.predict_on(id, query).expect("predict reply");
                                }
                                unit.queries.len() as u64
                            }
                            (None, true) => match id {
                                None => server.predict_batch(unit.queries).len() as u64,
                                Some(id) => server
                                    .predict_batch_for(id, unit.queries)
                                    .expect("batch model")
                                    .len() as u64,
                            },
                            (None, false) => {
                                let n = unit.queries.len() as u64;
                                for query in unit.queries {
                                    match id {
                                        None => {
                                            server.predict(query);
                                        }
                                        Some(id) => {
                                            server.predict_for(id, query).expect("predict model");
                                        }
                                    }
                                }
                                n
                            }
                        };
                        latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        completed += answered;
                    }
                    ClientReport {
                        completed,
                        latencies_ns,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let total: u64 = reports.iter().map(|r| r.completed).sum();
    let mut latencies: Vec<u64> = reports.into_iter().flat_map(|r| r.latencies_ns).collect();
    latencies.sort_unstable();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let unit = if options.batch > 1 {
        "batch"
    } else {
        "request"
    };

    let stats = server.stats();
    println!("results:");
    println!("  predictions:  {total} in {:.3}s", elapsed.as_secs_f64());
    println!("  throughput:   {throughput:.0} predictions/sec");
    println!(
        "  latency/{unit}: p50 {:.1}us  p99 {:.1}us  max {:.1}us",
        percentile(&latencies, 0.50) / 1000.0,
        percentile(&latencies, 0.99) / 1000.0,
        latencies.last().copied().unwrap_or(0) as f64 / 1000.0,
    );
    println!(
        "  server:       {} served, cache hit rate {:.1}%, {:.2} requests/batch, mean queue+service {:.1}us",
        stats.requests,
        100.0 * stats.hit_rate(),
        stats.requests as f64 / stats.batches.max(1) as f64,
        stats.mean_latency_us,
    );
    println!(
        "  shard load:   [{}]",
        stats
            .per_shard
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    if options.models > 1 {
        for model in &stats.models {
            println!(
                "  model {:<12} {} requests, hit rate {:.1}%",
                model.id,
                model.requests,
                100.0 * model.cache_hits as f64
                    / (model.cache_hits + model.cache_misses).max(1) as f64,
            );
        }
    }
}
