//! Synthetic query-traffic generator for the prediction-serving subsystem.
//!
//! Trains a model on the quick universe, stands up a [`PredictionServer`],
//! replays deterministic query traffic from client threads, and reports
//! sustained throughput plus p50/p99 latency. Two transports:
//!
//! - `engine` (default): clients call the in-process server API — measures
//!   the shard/cache/batching engine itself;
//! - `tcp`: clients speak the length-prefixed JSON frame protocol to a
//!   loopback listener — measures the full wire stack.
//!
//! Usage: `cargo run --release -p gps-bench --bin loadgen -- [options]`
//!
//! ```text
//! --shards N      server shards                    (default 8)
//! --clients N     concurrent client threads        (default 8)
//! --requests N    total requests                   (default 400000)
//! --batch N       queries per batch request, 0=single (default 0)
//! --subnets N     distinct query /16s, controls cache hit rate (default 64)
//! --warm          pre-touch every subnet before timing (default on)
//! --no-warm       measure cold, misses included
//! --tcp           use the TCP transport
//! --seed N        universe seed                    (default 77)
//! ```

use std::sync::Arc;
use std::time::Instant;

use gps_core::{censys_dataset, run_gps, GpsConfig, ModelSnapshot};
use gps_serve::{PredictionServer, Query, ServableModel, ServeConfig};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::rng::Rng;
use gps_types::Ip;

struct Options {
    shards: usize,
    clients: usize,
    requests: u64,
    batch: usize,
    subnets: usize,
    warm: bool,
    tcp: bool,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            shards: 8,
            clients: 8,
            requests: 400_000,
            batch: 0,
            subnets: 64,
            warm: true,
            tcp: false,
            seed: 77,
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--shards" => options.shards = num(&value("--shards")?)?,
            "--clients" => options.clients = num(&value("--clients")?)?,
            "--requests" => options.requests = num(&value("--requests")?)?,
            "--batch" => options.batch = num(&value("--batch")?)?,
            "--subnets" => options.subnets = num(&value("--subnets")?)?,
            "--warm" => options.warm = true,
            "--no-warm" => options.warm = false,
            "--tcp" => options.tcp = true,
            "--seed" => options.seed = num(&value("--seed")?)?,
            "--help" | "-h" => {
                println!("see the module docs in crates/bench/src/bin/loadgen.rs");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if options.clients == 0 || options.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(options)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse {s:?}"))
}

/// Deterministic query mix over `subnets` distinct /16s: 80% cold queries,
/// 20% warm (one open port of evidence).
fn make_queries(net: &Internet, options: &Options, count: usize, rng: &mut Rng) -> Vec<Query> {
    let host_ips = net.host_ips();
    // Anchor subnets on real hosts so cold queries hit trained priors.
    let anchors: Vec<Ip> = (0..options.subnets.max(1))
        .map(|_| Ip(host_ips[rng.gen_range(host_ips.len() as u64) as usize]))
        .collect();
    (0..count)
        .map(|_| {
            let anchor = *rng.choose(&anchors);
            // Same /16, random low bits: exercises the per-subnet cache.
            let ip = Ip((anchor.0 & 0xFFFF_0000) | (rng.next_u32() & 0xFFFF));
            let mut query = Query::new(ip);
            if rng.chance(0.2) {
                query = query.with_open([[80u16, 443, 22][rng.gen_range(3) as usize]]);
            }
            query.top = 8;
            query
        })
        .collect()
}

struct ClientReport {
    completed: u64,
    latencies_ns: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "training model on quick universe (seed {})...",
        options.seed
    );
    let net = Internet::generate(&UniverseConfig::tiny(options.seed));
    let dataset = censys_dataset(&net, 200, 0.05, 0, 1);
    let config = GpsConfig {
        seed_fraction: 0.05,
        step_prefix: 16,
        ..GpsConfig::default()
    };
    let run = run_gps(&net, &dataset, &config);
    let snapshot = ModelSnapshot::from_run(&run, &config, options.seed);
    println!(
        "  {} model keys, {} rules, {} priors",
        snapshot.manifest.distinct_keys, snapshot.manifest.num_rules, snapshot.manifest.num_priors
    );

    let server = Arc::new(PredictionServer::start(
        ServableModel::from_snapshot(snapshot),
        ServeConfig {
            shards: options.shards,
            ..ServeConfig::default()
        },
    ));

    // TCP transport: listener + per-client connections.
    let tcp_addr = if options.tcp {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let server = server.clone();
        std::thread::spawn(move || gps_serve::serve_tcp(server, listener));
        Some(addr)
    } else {
        None
    };

    // Pre-generate per-client traffic so generation cost stays outside the
    // timed section.
    let per_client = (options.requests / options.clients as u64) as usize;
    let mut rng = Rng::new(options.seed ^ 0x10AD);
    let traffic: Vec<Vec<Query>> = (0..options.clients)
        .map(|_| make_queries(&net, &options, per_client, &mut rng))
        .collect();

    if options.warm {
        // Touch every distinct cache slot the timed traffic will hit
        // (dedup on the cache key granularity: subnet, evidence, top) so
        // the timed section measures the cache-warm steady state.
        let mut seen = std::collections::HashSet::new();
        let warmup: Vec<Query> = traffic
            .iter()
            .flatten()
            .filter(|q| seen.insert((q.ip.0 & 0xFFFF_0000, q.open.clone(), q.asn, q.top)))
            .cloned()
            .collect();
        server.predict_batch(warmup);
    }

    println!(
        "replaying {} requests over {} clients ({} shards, batch={}, transport={})...",
        per_client * options.clients,
        options.clients,
        options.shards,
        options.batch,
        if options.tcp { "tcp" } else { "engine" },
    );
    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = traffic
            .into_iter()
            .map(|queries| {
                let server = server.clone();
                let batch = options.batch;
                scope.spawn(move || {
                    let mut latencies_ns = Vec::with_capacity(queries.len());
                    let mut completed = 0u64;
                    if let Some(addr) = tcp_addr {
                        let mut client =
                            gps_serve::Client::connect(addr).expect("connect loadgen client");
                        if batch > 1 {
                            for chunk in queries.chunks(batch) {
                                let t0 = Instant::now();
                                let answers = client.predict_batch(chunk).expect("batch reply");
                                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                                completed += answers.len() as u64;
                            }
                        } else {
                            for query in &queries {
                                let t0 = Instant::now();
                                client.predict(query).expect("predict reply");
                                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                                completed += 1;
                            }
                        }
                    } else if batch > 1 {
                        for chunk in queries.chunks(batch) {
                            let t0 = Instant::now();
                            let answers = server.predict_batch(chunk.to_vec());
                            latencies_ns.push(t0.elapsed().as_nanos() as u64);
                            completed += answers.len() as u64;
                        }
                    } else {
                        for query in queries {
                            let t0 = Instant::now();
                            let _ = server.predict(query);
                            latencies_ns.push(t0.elapsed().as_nanos() as u64);
                            completed += 1;
                        }
                    }
                    ClientReport {
                        completed,
                        latencies_ns,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let total: u64 = reports.iter().map(|r| r.completed).sum();
    let mut latencies: Vec<u64> = reports.into_iter().flat_map(|r| r.latencies_ns).collect();
    latencies.sort_unstable();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let unit = if options.batch > 1 {
        "batch"
    } else {
        "request"
    };

    let stats = server.stats();
    println!("results:");
    println!("  predictions:  {total} in {:.3}s", elapsed.as_secs_f64());
    println!("  throughput:   {throughput:.0} predictions/sec");
    println!(
        "  latency/{unit}: p50 {:.1}us  p99 {:.1}us  max {:.1}us",
        percentile(&latencies, 0.50) / 1000.0,
        percentile(&latencies, 0.99) / 1000.0,
        latencies.last().copied().unwrap_or(0) as f64 / 1000.0,
    );
    println!(
        "  server:       {} served, cache hit rate {:.1}%, {:.2} requests/batch, mean queue+service {:.1}us",
        stats.requests,
        100.0 * stats.hit_rate(),
        stats.requests as f64 / stats.batches.max(1) as f64,
        stats.mean_latency_us,
    );
    println!(
        "  shard load:   [{}]",
        stats
            .per_shard
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
}
