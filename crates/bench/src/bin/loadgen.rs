//! Synthetic query-traffic generator for the prediction-serving subsystem.
//!
//! Trains one or more models on quick universes, stands up a
//! [`PredictionServer`] (a model registry when `--models > 1`), replays
//! deterministic query traffic from client threads, and reports sustained
//! throughput plus p50/p99 latency. Transports:
//!
//! - `engine` (default): clients call the in-process server API — measures
//!   the shard/cache/batching engine itself;
//! - `--tcp`: clients speak the length-prefixed JSON frame protocol to a
//!   loopback listener — measures the full wire stack, served by
//!   `--transport threads` (default) or `--transport events`.
//!
//! **Connection-scaling mode** (`--connections N`): open N persistent
//! connections (implies `--tcp`) and spread the request load across all
//! of them round-robin — most connections are idle at any instant, which
//! is exactly the C10K shape an LZR-style scanning fan-in produces. The
//! run reports the server-side live-connection count alongside latency,
//! so "sustains N concurrent connections at p99 X" is measured, not
//! assumed. With `--connections 0` (default) each client thread keeps one
//! connection busy, as before.
//!
//! With `--addr HOST:PORT` the traffic targets an **external** `gps
//! serve` process instead (no training, no in-process server; queries
//! use arbitrary deterministic IPs and the default model). CI's smoke
//! job uses this to drive a thousand connections against a real
//! `--transport events` server while hot-reloading it.
//!
//! With `--models N` (N > 1) each request targets one of N registered
//! models (round-robin-ish by rng), each trained on its own universe and
//! queried with traffic anchored in that universe — the mixed-model
//! pattern a one-server-many-universes deployment sees. Per-model request
//! counts are reported at the end.
//!
//! Usage: `cargo run --release -p gps-bench --bin loadgen -- [options]`
//!
//! ```text
//! --shards N       server shards                    (default 8)
//! --clients N      concurrent client threads        (default 8)
//! --requests N     total requests                   (default 400000)
//! --batch N        queries per batch request, 0=single (default 0)
//! --subnets N      distinct query /16s per model, controls hit rate (default 64)
//! --models N       registered models, mixed traffic (default 1)
//! --warm           pre-touch every subnet before timing (default on)
//! --no-warm        measure cold, misses included
//! --tcp            use the TCP transport
//! --transport T    TCP serving transport: threads | events (default threads)
//! --wire W         TCP wire format: json | binary | both (default json;
//!                  non-json implies --tcp; `both` replays the identical
//!                  traffic once per format and prints them side by side)
//! --pipeline K     single-query mode: keep K requests in flight per
//!                  thread (default 1 = classic closed loop; implies
//!                  --tcp; capped at the server's 128-request window)
//! --connections N  open-loop mode: hold N connections, spread load (implies --tcp)
//! --addr A         target an external server instead of self-hosting
//! --seed N         universe seed (model i uses seed+i) (default 77)
//! --json-out PATH  write a machine-readable report (per-wave throughput,
//!                  client percentiles, and the server-side latency
//!                  histogram with p50/p90/p99/p999) — the BENCH_N.json
//!                  artifact format
//! ```
//!
//! Before each wave the server's traffic counters and histograms are
//! zeroed via the `reset-stats` admin command (in-process or over the
//! wire), so a `--wire both` report carries one clean per-format
//! server-side latency distribution per wave; cache contents and model
//! generations are untouched, keeping every wave equally warm.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gps_core::{censys_dataset, run_gps, GpsConfig, ModelSnapshot};
use gps_serve::{
    PredictionServer, Query, ServableModel, ServeConfig, TransportConfig, WireFormat,
    DEFAULT_MODEL_ID,
};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::json::Json;
use gps_types::rng::Rng;
use gps_types::{HistogramSnapshot, Ip, JsonCodec};

struct Options {
    shards: usize,
    clients: usize,
    requests: u64,
    batch: usize,
    subnets: usize,
    models: usize,
    warm: bool,
    tcp: bool,
    transport: String,
    wire: String,
    pipeline: usize,
    connections: usize,
    addr: Option<String>,
    seed: u64,
    json_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            shards: 8,
            clients: 8,
            requests: 400_000,
            batch: 0,
            subnets: 64,
            models: 1,
            warm: true,
            tcp: false,
            transport: "threads".to_string(),
            wire: "json".to_string(),
            pipeline: 1,
            connections: 0,
            addr: None,
            seed: 77,
            json_out: None,
        }
    }
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--shards" => options.shards = num(&value("--shards")?)?,
            "--clients" => options.clients = num(&value("--clients")?)?,
            "--requests" => options.requests = num(&value("--requests")?)?,
            "--batch" => options.batch = num(&value("--batch")?)?,
            "--subnets" => options.subnets = num(&value("--subnets")?)?,
            "--models" => options.models = num(&value("--models")?)?,
            "--warm" => options.warm = true,
            "--no-warm" => options.warm = false,
            "--tcp" => options.tcp = true,
            "--transport" => options.transport = value("--transport")?,
            "--wire" => options.wire = value("--wire")?,
            "--pipeline" => options.pipeline = num(&value("--pipeline")?)?,
            "--connections" => options.connections = num(&value("--connections")?)?,
            "--addr" => options.addr = Some(value("--addr")?),
            "--seed" => options.seed = num(&value("--seed")?)?,
            "--json-out" => options.json_out = Some(value("--json-out")?),
            "--help" | "-h" => {
                println!("see the module docs in crates/bench/src/bin/loadgen.rs");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if options.clients == 0 || options.requests == 0 || options.models == 0 {
        return Err("--clients, --requests and --models must be positive".to_string());
    }
    if options.connections > 0 || options.addr.is_some() {
        options.tcp = true;
    }
    if !matches!(options.wire.as_str(), "json" | "binary" | "both") {
        return Err(format!(
            "--wire: unknown wire format {:?} (json|binary|both)",
            options.wire
        ));
    }
    if options.wire != "json" {
        // The wire format only exists on the TCP path.
        options.tcp = true;
    }
    if options.pipeline == 0 {
        return Err("--pipeline must be at least 1".to_string());
    }
    if options.pipeline > 1 {
        options.tcp = true; // pipelining is a wire-level behavior
        if options.batch > 1 {
            return Err("--pipeline applies to single-query traffic (--batch 0)".to_string());
        }
        if options.pipeline > 128 {
            // The server's per-connection pipeline window is 128; deeper
            // client pipelines would measure server backpressure instead.
            return Err("--pipeline is capped at 128 (the server's window)".to_string());
        }
    }
    if options.addr.is_some() && options.models > 1 {
        return Err("--addr targets an external server; --models must stay 1".to_string());
    }
    TransportConfig::named(&options.transport).map_err(|e| format!("--transport: {e}"))?;
    Ok(options)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse {s:?}"))
}

/// One trained model plus the query anchors of its universe.
struct TrainedModel {
    id: String,
    model: Option<ServableModel>,
    /// Real host IPs: cold queries against them hit trained priors. The
    /// query mix draws random low bits within each anchor's /16.
    host_ips: Vec<u32>,
}

/// One batch-unit of client traffic: which model, which queries. Single
/// mode uses units of one query. Cloned per wire-format wave so `--wire
/// both` replays byte-for-byte identical traffic on each format.
#[derive(Clone)]
struct TrafficUnit {
    model: usize,
    queries: Vec<Query>,
}

/// Deterministic query mix over `subnets` distinct /16s of one model's
/// universe: 80% cold queries, 20% warm (one open port of evidence).
fn make_unit(anchors: &[Ip], count: usize, rng: &mut Rng) -> Vec<Query> {
    (0..count)
        .map(|_| {
            let anchor = *rng.choose(anchors);
            // Same /16, random low bits: exercises the per-subnet cache.
            let ip = Ip((anchor.0 & 0xFFFF_0000) | (rng.next_u32() & 0xFFFF));
            let mut query = Query::new(ip);
            if rng.chance(0.2) {
                query = query.with_open([[80u16, 443, 22][rng.gen_range(3) as usize]]);
            }
            query.top = 8;
            query
        })
        .collect()
}

struct ClientReport {
    completed: u64,
    latencies_ns: Vec<u64>,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

/// Connect with retries: a burst of thousands of connects can outrun the
/// accept loop's backlog. A server that stays unreachable aborts the
/// whole process (exit 2) — a panicking pool-builder thread would
/// otherwise leave everyone else parked on the start barrier forever.
fn connect_patiently(addr: SocketAddr, wire: WireFormat) -> gps_serve::Client {
    let mut delay = Duration::from_millis(5);
    for attempt in 0..40 {
        match gps_serve::Client::connect_with(addr, wire) {
            Ok(client) => return client,
            Err(e) if attempt == 39 => {
                eprintln!("error: connect to {addr}: {e}");
                std::process::exit(2);
            }
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
    unreachable!()
}

/// What one measured wave (one wire format over the full traffic set)
/// produced.
struct WaveResult {
    wire: WireFormat,
    total: u64,
    elapsed: Duration,
    /// Sorted request/batch latencies, nanoseconds.
    latencies_ns: Vec<u64>,
    /// The server-side latency histogram for this wave's wire (empty in
    /// pure engine mode, which never crosses the wire).
    server_hist: HistogramSnapshot,
}

impl WaveResult {
    fn throughput(&self) -> f64 {
        self.total as f64 / self.elapsed.as_secs_f64()
    }
}

/// The histogram cell label a wire format records under server-side.
fn hist_label(wire: WireFormat) -> &'static str {
    match wire {
        WireFormat::Json => "json",
        WireFormat::Binary => "gpsq",
    }
}

/// Merge every histogram cell of `wire` out of a remote server's `stats`
/// reply (the `"hists"` map, keyed `"<wire>/<endpoint>"`).
fn remote_hist(control: &mut gps_serve::Client, wire: &str) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::default();
    if let Ok(stats) = control.stats() {
        if let Some(Json::Obj(cells)) = stats.get("hists") {
            for (key, value) in cells {
                let of_wire =
                    key.starts_with(wire) && key.as_bytes().get(wire.len()) == Some(&b'/');
                if !of_wire {
                    continue;
                }
                if let Ok(snap) = HistogramSnapshot::from_json(value) {
                    merged.merge(&snap);
                }
            }
        }
    }
    merged
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let external: Option<SocketAddr> = options.addr.as_ref().map(|addr| {
        addr.parse()
            .unwrap_or_else(|e| panic!("--addr {addr}: {e}"))
    });

    // Train one model per universe (model i gets seed+i); external mode
    // queries whatever the remote server serves instead.
    let mut trained: Vec<TrainedModel> = Vec::with_capacity(options.models);
    if external.is_none() {
        for i in 0..options.models as u64 {
            let seed = options.seed + i;
            println!("training model on quick universe (seed {seed})...");
            let net = Internet::generate(&UniverseConfig::tiny(seed));
            let dataset = censys_dataset(&net, 200, 0.05, 0, 1);
            let config = GpsConfig {
                seed_fraction: 0.05,
                step_prefix: 16,
                ..GpsConfig::default()
            };
            let run = run_gps(&net, &dataset, &config);
            let snapshot = ModelSnapshot::from_run(&run, &config, seed);
            println!(
                "  {} model keys, {} rules, {} priors",
                snapshot.manifest.distinct_keys,
                snapshot.manifest.num_rules,
                snapshot.manifest.num_priors
            );
            trained.push(TrainedModel {
                id: if options.models == 1 {
                    DEFAULT_MODEL_ID.to_string()
                } else {
                    format!("seed{seed}")
                },
                model: Some(ServableModel::from_snapshot(snapshot)),
                host_ips: net.host_ips().to_vec(),
            });
        }
    } else {
        // Anchors are arbitrary deterministic /16s; the remote model
        // answers whatever it answers (throughput/latency still count).
        let mut rng = Rng::new(options.seed);
        trained.push(TrainedModel {
            id: DEFAULT_MODEL_ID.to_string(),
            model: None,
            host_ips: (0..4096).map(|_| rng.next_u32()).collect(),
        });
    }

    let server: Option<Arc<PredictionServer>> = if external.is_none() {
        Some(Arc::new(
            PredictionServer::start_named(
                trained
                    .iter_mut()
                    .map(|t| (t.id.clone(), t.model.take().expect("trained once")))
                    .collect(),
                ServeConfig {
                    shards: options.shards,
                    ..ServeConfig::default()
                },
            )
            .expect("registry starts"),
        ))
    } else {
        None
    };
    let ids: Vec<String> = trained.iter().map(|t| t.id.clone()).collect();
    // Single-model runs stay on the id-less fast path (pre-registry
    // numbers stay comparable); mixed runs address models by id.
    let id_of = |model: usize| -> Option<&str> {
        if options.models > 1 {
            Some(ids[model].as_str())
        } else {
            None
        }
    };

    // TCP transport: a listener on the chosen serving transport (or the
    // external server's address).
    let tcp_addr: Option<SocketAddr> = match (&server, external) {
        (_, Some(addr)) => Some(addr),
        (Some(server), None) if options.tcp => {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("local addr");
            let server = server.clone();
            let config =
                TransportConfig::named(&options.transport).expect("transport validated at parse");
            std::thread::spawn(move || gps_serve::serve(server, listener, config));
            Some(addr)
        }
        _ => None,
    };

    // Pre-generate per-client traffic so generation cost stays outside the
    // timed section. Each unit is one request (or one batch frame) against
    // one model, anchored in that model's universe.
    let per_client = (options.requests / options.clients as u64) as usize;
    let unit_size = options.batch.max(1);
    let mut rng = Rng::new(options.seed ^ 0x10AD);
    let anchors: Vec<Vec<Ip>> = trained
        .iter()
        .map(|t| {
            (0..options.subnets.max(1))
                .map(|_| Ip(t.host_ips[rng.gen_range(t.host_ips.len() as u64) as usize]))
                .collect()
        })
        .collect();
    let traffic: Vec<Vec<TrafficUnit>> = (0..options.clients)
        .map(|_| {
            let mut units = Vec::new();
            let mut generated = 0usize;
            while generated < per_client {
                let model = rng.gen_range(options.models as u64) as usize;
                let count = unit_size.min(per_client - generated);
                units.push(TrafficUnit {
                    model,
                    queries: make_unit(&anchors[model], count, &mut rng),
                });
                generated += count;
            }
            units
        })
        .collect();

    if options.warm {
        if let Some(server) = &server {
            // Touch every distinct cache slot the timed traffic will hit
            // (dedup on the cache key granularity: model, subnet,
            // evidence, top) so the timed section measures the cache-warm
            // steady state.
            let mut seen = std::collections::HashSet::new();
            for unit in traffic.iter().flatten() {
                let warmup: Vec<Query> = unit
                    .queries
                    .iter()
                    .filter(|q| {
                        seen.insert((
                            unit.model,
                            q.ip.0 & 0xFFFF_0000,
                            q.open.clone(),
                            q.asn,
                            q.top,
                        ))
                    })
                    .cloned()
                    .collect();
                if warmup.is_empty() {
                    continue;
                }
                // Single predicts, not a batch: the single path runs
                // through the transport-level L1 answer cache, so this
                // seeds *both* cache layers and every timed wave —
                // json first or binary first — starts equally warm.
                for query in warmup {
                    match id_of(unit.model) {
                        None => {
                            server.predict(query);
                        }
                        Some(id) => {
                            server.predict_for(id, query).expect("warmup model");
                        }
                    }
                }
            }
        }
    }

    // Connection-scaling mode: every thread owns its share of the N
    // persistent connections and rotates its requests across them, so
    // at any instant (N - clients) connections sit idle on the server —
    // the many-mostly-idle-peers shape.
    let conns_per_thread: usize = if options.connections > 0 {
        let per = options.connections.div_ceil(options.clients);
        per.max(1)
    } else {
        0
    };

    // The wire formats this invocation measures; `--wire both` replays
    // the identical traffic once per format against the same server, so
    // the two throughputs in one report are directly comparable.
    let wires: Vec<WireFormat> = match options.wire.as_str() {
        "json" => vec![WireFormat::Json],
        "binary" => vec![WireFormat::Binary],
        _ => vec![WireFormat::Json, WireFormat::Binary],
    };

    // One measured wave: the full traffic set over every client thread,
    // all connections speaking `wire`.
    let run_wave = |wire: WireFormat| -> (Vec<ClientReport>, Duration, u64, u64) {
        let live_conns = std::sync::atomic::AtomicU64::new(0);
        // Sampled while traffic flows: the server-side live-connection
        // count (reading it after the clients hang up would report zero).
        let peak_conns = std::sync::atomic::AtomicU64::new(0);
        let done = std::sync::atomic::AtomicBool::new(false);
        // Every thread finishes building its connection pool before any
        // thread sends its first timed request: the full connection count
        // is concurrently live for the whole measured window, and pool
        // setup stays outside the clock.
        let start_line = std::sync::Barrier::new(options.clients + 1);
        let (reports, elapsed): (Vec<ClientReport>, Duration) = std::thread::scope(|scope| {
            if options.connections > 0 {
                let server = server.clone();
                let done = &done;
                let peak_conns = &peak_conns;
                scope.spawn(move || {
                    let mut control = external.map(|addr| connect_patiently(addr, wire));
                    while !done.load(std::sync::atomic::Ordering::Acquire) {
                        let active = match (&server, &mut control) {
                            (Some(server), _) => server.stats().conns_active,
                            (None, Some(control)) => control
                                .stats()
                                .ok()
                                .and_then(|s| s.get("conns_active").and_then(|j| j.as_u64()))
                                .unwrap_or(0),
                            (None, None) => 0,
                        };
                        peak_conns.fetch_max(active, std::sync::atomic::Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(25));
                    }
                });
            }
            let handles: Vec<_> = traffic
                .iter()
                .map(|units| {
                    let units = units.clone();
                    let server = server.clone();
                    let batched = options.batch > 1;
                    let id_of = &id_of;
                    let live_conns = &live_conns;
                    let start_line = &start_line;
                    scope.spawn(move || {
                        let mut latencies_ns = Vec::with_capacity(units.len());
                        let mut completed = 0u64;
                        // One connection per thread, or this thread's
                        // slice of the connection pool.
                        let mut pool: Vec<gps_serve::Client> = match (tcp_addr, conns_per_thread) {
                            (Some(addr), 0) => vec![connect_patiently(addr, wire)],
                            (Some(addr), n) => {
                                let mut pool = Vec::with_capacity(n);
                                for _ in 0..n {
                                    pool.push(connect_patiently(addr, wire));
                                    live_conns.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                                pool
                            }
                            (None, _) => Vec::new(),
                        };
                        let mut next_conn = 0usize;
                        start_line.wait();
                        // Pipelined single-query mode: keep `depth`
                        // requests in flight per thread (the protocol
                        // answers in request order per connection, so
                        // receive in send order). Consecutive sends
                        // coalesce in the client's write buffer — the
                        // per-request syscall+wakeup cost the closed
                        // loop pays disappears, leaving the wire codec
                        // as the measured cost.
                        let depth = options.pipeline;
                        if depth > 1 && !pool.is_empty() {
                            let mut inflight: std::collections::VecDeque<(u64, Instant, usize)> =
                                std::collections::VecDeque::with_capacity(depth);
                            let finish =
                                |inflight: &mut std::collections::VecDeque<(u64, Instant, usize)>,
                                 pool: &mut Vec<gps_serve::Client>| {
                                    let (rid, t0, conn) =
                                        inflight.pop_front().expect("inflight nonempty");
                                    pool[conn].predict_recv(rid).expect("pipelined reply");
                                    t0.elapsed().as_nanos() as u64
                                };
                            for unit in units {
                                let id = id_of(unit.model);
                                let turn = next_conn;
                                next_conn = (next_conn + 1) % pool.len();
                                let t0 = Instant::now();
                                let rid = pool[turn]
                                    .predict_send(id, &unit.queries[0])
                                    .expect("pipelined send");
                                inflight.push_back((rid, t0, turn));
                                if inflight.len() >= depth {
                                    latencies_ns.push(finish(&mut inflight, &mut pool));
                                    completed += 1;
                                }
                            }
                            while !inflight.is_empty() {
                                latencies_ns.push(finish(&mut inflight, &mut pool));
                                completed += 1;
                            }
                            return ClientReport {
                                completed,
                                latencies_ns,
                            };
                        }
                        for unit in units {
                            let id = id_of(unit.model);
                            let t0 = Instant::now();
                            let answered = if pool.is_empty() {
                                let server = server.as_ref().expect("in-process mode");
                                if batched {
                                    match id {
                                        None => server.predict_batch(unit.queries).len() as u64,
                                        Some(id) => server
                                            .predict_batch_for(id, unit.queries)
                                            .expect("batch model")
                                            .len()
                                            as u64,
                                    }
                                } else {
                                    let n = unit.queries.len() as u64;
                                    for query in unit.queries {
                                        match id {
                                            None => {
                                                server.predict(query);
                                            }
                                            Some(id) => {
                                                server
                                                    .predict_for(id, query)
                                                    .expect("predict model");
                                            }
                                        }
                                    }
                                    n
                                }
                            } else {
                                let turn = next_conn;
                                next_conn = (next_conn + 1) % pool.len();
                                let client = &mut pool[turn];
                                if batched {
                                    client
                                        .predict_batch_on(id, &unit.queries)
                                        .expect("batch reply")
                                        .len() as u64
                                } else {
                                    for query in &unit.queries {
                                        client.predict_on(id, query).expect("predict reply");
                                    }
                                    unit.queries.len() as u64
                                }
                            };
                            latencies_ns.push(t0.elapsed().as_nanos() as u64);
                            completed += answered;
                        }
                        ClientReport {
                            completed,
                            latencies_ns,
                        }
                    })
                })
                .collect();
            start_line.wait(); // every pool is connected; the clock starts
            let started = Instant::now();
            let reports: Vec<ClientReport> = handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect();
            let elapsed = started.elapsed();
            done.store(true, std::sync::atomic::Ordering::Release);
            (reports, elapsed)
        });
        let live = live_conns.load(std::sync::atomic::Ordering::Relaxed);
        let peak = peak_conns.load(std::sync::atomic::Ordering::Relaxed);
        (reports, elapsed, live, peak)
    };

    let unit = if options.batch > 1 {
        "batch"
    } else {
        "request"
    };
    let mut waves: Vec<WaveResult> = Vec::new();
    for &wire in &wires {
        println!(
            "replaying {} requests over {} clients ({} shards, {} model(s), batch={}, transport={}{}{})...",
            per_client * options.clients,
            options.clients,
            options.shards,
            options.models,
            options.batch,
            match (options.tcp, external) {
                (_, Some(_)) => "external".to_string(),
                (true, None) => format!("tcp/{}", options.transport),
                (false, None) => "engine".to_string(),
            },
            if options.tcp {
                format!(", wire={}", wire.name())
            } else {
                String::new()
            },
            if options.connections > 0 {
                format!(", {} connections", options.connections)
            } else {
                String::new()
            },
        );
        if options.pipeline > 1 {
            println!("  (pipeline depth {} per thread)", options.pipeline);
        }
        // Zero counters + histograms before the wave (cache contents and
        // generations survive), so the server-side distribution read
        // afterwards covers exactly this wave's traffic.
        match (&server, external) {
            (Some(server), _) => server.reset_stats(),
            (None, Some(addr)) => {
                let mut control = connect_patiently(addr, wire);
                if let Err(e) = control.reset_stats() {
                    eprintln!("warning: reset-stats on {addr}: {e}");
                }
            }
            (None, None) => unreachable!("either in-process or external"),
        }
        let (reports, elapsed, live, peak) = run_wave(wire);
        let total: u64 = reports.iter().map(|r| r.completed).sum();
        let mut latencies_ns: Vec<u64> = reports.into_iter().flat_map(|r| r.latencies_ns).collect();
        latencies_ns.sort_unstable();
        println!("results ({}):", wire.name());
        println!("  predictions:  {total} in {:.3}s", elapsed.as_secs_f64());
        println!(
            "  throughput:   {:.0} predictions/sec",
            total as f64 / elapsed.as_secs_f64()
        );
        println!(
            "  latency/{unit}: p50 {:.1}us  p99 {:.1}us  max {:.1}us",
            percentile(&latencies_ns, 0.50) / 1000.0,
            percentile(&latencies_ns, 0.99) / 1000.0,
            latencies_ns.last().copied().unwrap_or(0) as f64 / 1000.0,
        );
        if options.connections > 0 {
            println!(
                "  connections:  {live} opened and held for the whole run ({peak} live server-side at peak)",
            );
        }
        let server_hist = match (&server, external) {
            (Some(server), _) => server.stats().merged_hist(Some(hist_label(wire)), None),
            (None, Some(addr)) => {
                let mut control = connect_patiently(addr, wire);
                remote_hist(&mut control, hist_label(wire))
            }
            (None, None) => unreachable!("either in-process or external"),
        };
        if !server_hist.is_empty() {
            println!(
                "  server hist:  p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  p999 {:.1}us ({} samples)",
                server_hist.percentile(0.50) as f64 / 1000.0,
                server_hist.percentile(0.90) as f64 / 1000.0,
                server_hist.percentile(0.99) as f64 / 1000.0,
                server_hist.percentile(0.999) as f64 / 1000.0,
                server_hist.count,
            );
        }
        waves.push(WaveResult {
            wire,
            total,
            elapsed,
            latencies_ns,
            server_hist,
        });
    }

    // `--wire both`: the side-by-side comparison the two waves exist for.
    if waves.len() > 1 {
        println!("wire comparison (identical traffic, same server):");
        println!(
            "  {:<8} {:>16} {:>12} {:>12}",
            "wire", "throughput", "p50", "p99"
        );
        for wave in &waves {
            println!(
                "  {:<8} {:>12.0}/sec {:>10.1}us {:>10.1}us",
                wave.wire.name(),
                wave.throughput(),
                percentile(&wave.latencies_ns, 0.50) / 1000.0,
                percentile(&wave.latencies_ns, 0.99) / 1000.0,
            );
        }
        let json = &waves[0];
        let binary = &waves[1];
        println!(
            "  binary is {:.2}x json throughput ({} frames)",
            binary.throughput() / json.throughput().max(1e-9),
            unit,
        );
    }
    match (&server, external) {
        (Some(server), _) => {
            let stats = server.stats();
            println!(
                "  server:       {} served, cache hit rate {:.1}%, {:.2} requests/batch, mean queue+service {:.1}us",
                stats.requests,
                100.0 * stats.hit_rate(),
                stats.requests as f64 / stats.batches.max(1) as f64,
                stats.mean_latency_us,
            );
            if options.tcp {
                println!(
                    "  conns:        accepted {}, closed {}, timed out {}, rejected {}",
                    stats.conns_accepted,
                    stats.conns_closed,
                    stats.conns_timed_out,
                    stats.conns_rejected,
                );
            }
            println!(
                "  shard load:   [{}]",
                stats
                    .per_shard
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            if options.models > 1 {
                for model in &stats.models {
                    println!(
                        "  model {:<12} {} requests, hit rate {:.1}%",
                        model.id,
                        model.requests,
                        100.0 * model.cache_hits as f64
                            / (model.cache_hits + model.cache_misses).max(1) as f64,
                    );
                }
            }
        }
        (None, Some(addr)) => {
            // External server: read its counters over the wire (the last
            // wave's format works for admin like any other).
            let mut control = connect_patiently(addr, wires[wires.len() - 1]);
            match control.stats() {
                Ok(stats) => {
                    let num = |k: &str| stats.get(k).and_then(|j| j.as_u64()).unwrap_or(0);
                    println!(
                        "  remote server: {} requests served, {} conns active (accepted {}, closed {}, rejected {})",
                        num("requests"),
                        num("conns_active"),
                        num("conns_accepted"),
                        num("conns_closed"),
                        num("conns_rejected"),
                    );
                }
                Err(e) => println!("  remote server: stats unavailable ({e})"),
            }
        }
        (None, None) => unreachable!("either in-process or external"),
    }

    if let Some(path) = &options.json_out {
        let mut report = Json::obj();
        report
            .set(
                "command",
                std::env::args().collect::<Vec<_>>().join(" ").as_str(),
            )
            .set("clients", options.clients)
            .set("requests", Json::Num(options.requests as f64))
            .set("shards", options.shards)
            .set("batch", options.batch)
            .set("pipeline", options.pipeline)
            .set(
                "transport",
                match (options.tcp, external) {
                    (_, Some(_)) => "external",
                    (true, None) => options.transport.as_str(),
                    (false, None) => "engine",
                },
            );
        let runs: Vec<Json> = waves
            .iter()
            .map(|wave| {
                let mut run = Json::obj();
                run.set("wire", wave.wire.name())
                    .set("predictions", Json::Num(wave.total as f64))
                    .set("elapsed_secs", Json::Num(wave.elapsed.as_secs_f64()))
                    .set("throughput_per_sec", Json::Num(wave.throughput()));
                let mut client = Json::obj();
                for (name, p) in [
                    ("p50_us", 0.50),
                    ("p90_us", 0.90),
                    ("p99_us", 0.99),
                    ("p999_us", 0.999),
                ] {
                    client.set(name, Json::Num(percentile(&wave.latencies_ns, p) / 1000.0));
                }
                run.set("client_latency", client);
                // The authoritative quantiles: the server's own histogram
                // (includes its p50/p90/p99/p999 via `to_json`).
                if !wave.server_hist.is_empty() {
                    run.set("server_hist", wave.server_hist.to_json());
                }
                run
            })
            .collect();
        report.set("runs", runs);
        let mut text = String::new();
        report.write(&mut text);
        text.push('\n');
        match std::fs::write(path, text) {
            Ok(()) => println!("  report:       written to {path}"),
            Err(e) => {
                eprintln!("error: --json-out {path}: {e}");
                std::process::exit(2);
            }
        }
    }
}
