//! Criterion micro-benchmarks for the GPS compute kernels; see benches/.
