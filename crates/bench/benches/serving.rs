//! Benchmark: the prediction-serving subsystem.
//!
//! Measures the two serving paths across shard counts: single-query
//! latency (`predict`) and batched throughput (`predict_batch`), with warm
//! per-shard caches — the steady state a long-lived deployment sits in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_core::{censys_dataset, run_gps, GpsConfig, ModelSnapshot};
use gps_serve::{PredictionServer, Query, ServableModel, ServeConfig};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::rng::Rng;
use gps_types::Ip;

fn trained_snapshot() -> ModelSnapshot {
    let net = Internet::generate(&UniverseConfig::tiny(77));
    let dataset = censys_dataset(&net, 200, 0.05, 0, 1);
    let config = GpsConfig {
        seed_fraction: 0.05,
        step_prefix: 16,
        ..GpsConfig::default()
    };
    let run = run_gps(&net, &dataset, &config);
    ModelSnapshot::from_run(&run, &config, 77)
}

fn queries(snapshot: &ModelSnapshot, count: usize) -> Vec<Query> {
    // Query IPs drawn from the trained priors subnets (cache-friendly mix,
    // 64 distinct subnets).
    let mut rng = Rng::new(0xBE7C);
    let subnets: Vec<u32> = snapshot
        .priors
        .iter()
        .take(64)
        .map(|e| e.subnet.base().0)
        .collect();
    (0..count)
        .map(|_| {
            let base = subnets[rng.gen_range(subnets.len() as u64) as usize];
            let mut query = Query::new(Ip(base | (rng.next_u32() & 0xFFFF)));
            if rng.chance(0.2) {
                query = query.with_open([443u16]);
            }
            query.top = 8;
            query
        })
        .collect()
}

fn bench_serving(c: &mut Criterion) {
    let snapshot = trained_snapshot();
    let workload = queries(&snapshot, 4096);

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    for shards in [1usize, 4, 8] {
        let server = PredictionServer::start(
            ServableModel::from_snapshot(snapshot.clone()),
            ServeConfig {
                shards,
                ..ServeConfig::default()
            },
        );
        // Warm every (subnet, evidence) slot once.
        server.predict_batch(workload.clone());

        group.throughput(criterion::Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("single_query", shards), &shards, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let query = workload[i % workload.len()].clone();
                i += 1;
                server.predict(query)
            });
        });
        group.throughput(criterion::Throughput::Elements(workload.len() as u64));
        group.bench_with_input(BenchmarkId::new("batched_4096", shards), &shards, |b, _| {
            b.iter(|| server.predict_batch(workload.clone()))
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
