//! Benchmark: snapshot load time, JSON vs GPSB binary.
//!
//! The serving subsystem's restart/reload latency is dominated by parsing
//! the snapshot. This bench trains once on the quick universe, saves the
//! same model in both formats, and measures:
//!
//! - full load (`ModelSnapshot::load`) — what `gps export-model`
//!   consumers pay;
//! - serving load (`ModelSnapshot::load_serving`) — what `gps serve` and
//!   a hot reload pay (the binary path hash-verifies the co-occurrence
//!   model section without parsing it).
//!
//! The acceptance bar for the GPSB format is binary ≥ 3× faster than
//! JSON on the quick universe; `full/binary` vs `full/json` is the
//! comparison. Serialization (`save`) is measured too for completeness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_core::{censys_dataset, run_gps, GpsConfig, ModelSnapshot};
use gps_synthnet::{Internet, UniverseConfig};

fn trained_snapshot() -> ModelSnapshot {
    let net = Internet::generate(&UniverseConfig::tiny(77));
    let dataset = censys_dataset(&net, 200, 0.05, 0, 1);
    let config = GpsConfig {
        seed_fraction: 0.05,
        step_prefix: 16,
        ..GpsConfig::default()
    };
    let run = run_gps(&net, &dataset, &config);
    ModelSnapshot::from_run(&run, &config, 77)
}

fn bench_snapshot_load(c: &mut Criterion) {
    let snapshot = trained_snapshot();
    let dir = std::env::temp_dir();
    let json_path = dir.join(format!("gps_bench_snapshot_{}.json", std::process::id()));
    let bin_path = dir.join(format!("gps_bench_snapshot_{}.gpsb", std::process::id()));
    snapshot.save(&json_path).expect("save json");
    snapshot.save_binary(&bin_path).expect("save binary");
    let json_size = std::fs::metadata(&json_path).expect("json meta").len();
    let bin_size = std::fs::metadata(&bin_path).expect("binary meta").len();
    eprintln!("snapshot sizes: json {json_size} bytes, binary {bin_size} bytes");

    let mut group = c.benchmark_group("snapshot_load");
    group.sample_size(20);
    for (format, path) in [("json", &json_path), ("binary", &bin_path)] {
        group.bench_with_input(BenchmarkId::new("full", format), path, |b, path| {
            b.iter(|| ModelSnapshot::load(path).expect("load"))
        });
        group.bench_with_input(BenchmarkId::new("serving", format), path, |b, path| {
            b.iter(|| ModelSnapshot::load_serving(path).expect("load_serving"))
        });
    }
    group.bench_with_input(BenchmarkId::new("save", "json"), &(), |b, ()| {
        b.iter(|| snapshot.to_json_string())
    });
    group.bench_with_input(BenchmarkId::new("save", "binary"), &(), |b, ()| {
        b.iter(|| snapshot.to_binary_bytes())
    });
    group.finish();

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
}

criterion_group!(benches, bench_snapshot_load);
criterion_main!(benches);
