//! Benchmark: the compiled struct-of-arrays prediction kernel vs the
//! HashMap reference path, on identical snapshots.
//!
//! Four query shapes bracket the serving workload:
//!
//! - `cold`: no open-port evidence — a priors lookup (compiled: one
//!   binary search + slice copy; reference: HashMap get + Vec clone);
//! - `warm_small`: one open port — the common incremental-rescan query;
//! - `warm_wide`: eight open ports with ASN evidence — a wide rule
//!   fan-in;
//! - `batch256`: 256 warm queries (small and wide evidence interleaved)
//!   folded through one reusable scratch — the batched-warm-predict
//!   steady state of a shard worker, where the ≥2× target is set.
//!
//! Both sides answer through their reusable-scratch entry points so the
//! comparison is kernel vs kernel, not allocator vs allocator. A second
//! group times the two `ServableModel::from_snapshot` paths: CMPL bulk
//! load vs compile-from-tables.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gps_core::{GpsConfig, ModelSnapshot};
use gps_serve::{PredictScratch, Query, ReferenceModel, ServableModel};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::{Ip, Port};

/// Train a real snapshot on the synthetic universe so both models see
/// production-shaped rule and priors tables.
fn trained_snapshot(net: &Internet) -> ModelSnapshot {
    let dataset = gps_core::censys_dataset(net, 100, 0.05, 0, 1);
    let config = GpsConfig::default();
    let run = gps_core::run_gps(net, &dataset, &config);
    ModelSnapshot::from_run(&run, &config, 101)
}

/// Query mix for the batch case: all-warm (the target is batched *warm*
/// predicts), with small and wide evidence interleaved across subnets the
/// model has and has not seen. Cold lookups are timed separately above.
fn batch_queries(net: &Internet) -> Vec<Query> {
    let ips = net.host_ips();
    (0..256u32)
        .map(|i| {
            let ip = Ip(ips[(i as usize * 97) % ips.len()]);
            let mut query = Query::new(ip);
            match i % 4 {
                0 => query.open = vec![Port(22)],
                1 => query.open = vec![Port(80)],
                2 => query.open = vec![Port(443), Port(22)],
                _ => {
                    query.open = [80u16, 443, 22, 8080, 21, 25, 3306, 8443]
                        .iter()
                        .map(|&p| Port(p))
                        .collect();
                    query.asn = net.asn_of(ip).map(|a| a.0);
                }
            }
            query
        })
        .collect()
}

fn bench_predict_kernel(c: &mut Criterion) {
    let net = Internet::generate(&UniverseConfig::tiny(101));
    let snapshot = trained_snapshot(&net);
    let bytes_with_cmpl = snapshot.to_binary_bytes_with(true);
    let bytes_without_cmpl = snapshot.to_binary_bytes_with(false);
    let reference = ReferenceModel::from_snapshot(&snapshot);
    let compiled = ServableModel::from_snapshot(snapshot);

    let cold = Query::new(Ip(net.host_ips()[7]));
    let warm_small = Query::new(Ip(net.host_ips()[13])).with_open([80]);
    let mut warm_wide =
        Query::new(Ip(net.host_ips()[29])).with_open([80, 443, 22, 8080, 21, 25, 3306, 8443]);
    warm_wide.asn = net.asn_of(warm_wide.ip).map(|a| a.0);
    let batch = batch_queries(&net);

    let mut scratch = PredictScratch::default();
    let mut best: HashMap<Port, f64> = HashMap::new();

    let mut group = c.benchmark_group("predict_kernel");
    for (label, query) in [
        ("cold", &cold),
        ("warm_small", &warm_small),
        ("warm_wide", &warm_wide),
    ] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("compiled/{label}"), |b| {
            b.iter(|| compiled.predict_with(&mut scratch, query))
        });
        group.bench_function(format!("reference/{label}"), |b| {
            b.iter(|| reference.predict_with(&mut best, query))
        });
    }

    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("compiled/batch256", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for query in &batch {
                n += compiled.predict_with(&mut scratch, query).len();
            }
            n
        })
    });
    group.bench_function("reference/batch256", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for query in &batch {
                n += reference.predict_with(&mut best, query).len();
            }
            n
        })
    });
    group.finish();

    let mut build = c.benchmark_group("predict_kernel_build");
    build.sample_size(20);
    build.bench_function("load_with_cmpl", |b| {
        b.iter(|| {
            let snapshot = ModelSnapshot::from_binary_bytes(&bytes_with_cmpl).unwrap();
            ServableModel::from_snapshot(snapshot).cache_prefix()
        })
    });
    build.bench_function("load_compile_fallback", |b| {
        b.iter(|| {
            let snapshot = ModelSnapshot::from_binary_bytes(&bytes_without_cmpl).unwrap();
            ServableModel::from_snapshot(snapshot).cache_prefix()
        })
    });
    build.finish();
}

criterion_group!(benches, bench_predict_kernel);
criterion_main!(benches);
