//! Benchmark: the dataflow engine's grouped-count and self-join kernels —
//! the primitives GPS's BigQuery queries decompose into (§5.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_engine::{group_count, ordered_pairs_within_groups, Backend, ExecLedger};

fn bench_engine(c: &mut Criterion) {
    // Synthetic host groups: 20k hosts with 2..6 "ports".
    let groups: Vec<Vec<u16>> = (0..20_000u32)
        .map(|i| {
            let k = 2 + (i % 5) as u16;
            (0..k)
                .map(|j| (i as u16).wrapping_mul(31).wrapping_add(j * 997) % 12288)
                .collect()
        })
        .collect();
    let flat: Vec<u16> = groups.iter().flatten().copied().collect();

    let mut group = c.benchmark_group("engine");
    group.sample_size(20);

    for backend in [Backend::SingleCore, Backend::parallel()] {
        let label = match backend {
            Backend::SingleCore => "single",
            _ => "parallel",
        };
        group.bench_with_input(
            BenchmarkId::new("group_count", label),
            &backend,
            |b, &backend| {
                b.iter(|| group_count(&flat, backend, &ExecLedger::new(), |x, sink| sink(*x)).len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("self_join_pairs", label),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    ordered_pairs_within_groups(
                        &groups,
                        backend,
                        &ExecLedger::new(),
                        |g| g.len(),
                        || 0u64,
                        |acc, _, _, _| *acc += 1,
                        |a, b| a + b,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
