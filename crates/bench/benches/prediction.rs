//! Benchmark: rule construction and prediction matching (§5.4).
//!
//! The "Predicting Remaining Services" stage of Table 2: build the
//! most-predictive-features list from the seed, then match priors-scan
//! hosts against it to emit the predictions list.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};
use gps_core::{build_predictions, group_by_host, FeatureRules, Interactions, NetFeature};
use gps_engine::{Backend, ExecLedger};
use gps_scan::{ScanConfig, ScanPhase, Scanner};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::Ip;

fn bench_prediction(c: &mut Criterion) {
    let net = Internet::generate(&UniverseConfig::tiny(101));
    let mut scanner = Scanner::new(&net, ScanConfig::default());
    let take = net.host_ips().len() / 5;
    let ips: Vec<Ip> = net.host_ips().iter().take(take).map(|&ip| Ip(ip)).collect();
    let observations = scanner.scan_ip_set(ScanPhase::Seed, ips, &net.all_ports());
    let (observations, _) = gps_core::filter_pseudo_services(observations);
    let net_features = [NetFeature::Slash(16), NetFeature::Asn];
    let asn_of = |ip: Ip| net.asn_of(ip).map(|a| a.0);
    let hosts = group_by_host(&observations, &net_features, &asn_of);
    let (model, _) = gps_core::CondModel::build(
        &hosts,
        Interactions::ALL,
        Backend::parallel(),
        &ExecLedger::new(),
    );

    // Priors-scan stand-in: the *next* 20% of hosts.
    let prior_ips: Vec<Ip> = net
        .host_ips()
        .iter()
        .skip(take)
        .take(take)
        .map(|&ip| Ip(ip))
        .collect();
    let prior_observations = scanner.scan_ip_set(ScanPhase::Priors, prior_ips, &net.all_ports());
    let prior_hosts = group_by_host(&prior_observations, &net_features, &asn_of);
    let known: HashSet<(u32, u16)> = observations.iter().map(|o| (o.ip.0, o.port.0)).collect();

    let mut group = c.benchmark_group("prediction");
    group.sample_size(10);
    group.bench_function("rules_build", |b| {
        b.iter(|| FeatureRules::build(&model, &hosts, 1e-5))
    });
    let rules = FeatureRules::build(&model, &hosts, 1e-5);
    group.throughput(criterion::Throughput::Elements(prior_hosts.len() as u64));
    group.bench_function("match_priors_hosts", |b| {
        b.iter(|| build_predictions(&rules, &prior_hosts, &known, usize::MAX))
    });
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
