//! Benchmark: rule construction and prediction matching (§5.4).
//!
//! The "Predicting Remaining Services" stage of Table 2: build the
//! most-predictive-features list from the seed, then match priors-scan
//! hosts against it to emit the predictions list.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};
use gps_core::{build_predictions, group_by_host, FeatureRules, Interactions, NetFeature};
use gps_engine::{Backend, ExecLedger};
use gps_scan::{ScanConfig, ScanPhase, Scanner};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::Ip;

fn bench_prediction(c: &mut Criterion) {
    let net = Internet::generate(&UniverseConfig::tiny(101));
    let mut scanner = Scanner::new(&net, ScanConfig::default());
    let take = net.host_ips().len() / 5;
    let ips: Vec<Ip> = net.host_ips().iter().take(take).map(|&ip| Ip(ip)).collect();
    let observations = scanner.scan_ip_set(ScanPhase::Seed, ips, &net.all_ports());
    let (observations, _) = gps_core::filter_pseudo_services(observations);
    let net_features = [NetFeature::Slash(16), NetFeature::Asn];
    let asn_of = |ip: Ip| net.asn_of(ip).map(|a| a.0);
    let hosts = group_by_host(&observations, &net_features, &asn_of);
    let (model, _) = gps_core::CondModel::build(
        &hosts,
        Interactions::ALL,
        Backend::parallel(),
        &ExecLedger::new(),
    );

    // Priors-scan stand-in: the *next* 20% of hosts.
    let prior_ips: Vec<Ip> = net
        .host_ips()
        .iter()
        .skip(take)
        .take(take)
        .map(|&ip| Ip(ip))
        .collect();
    let prior_observations = scanner.scan_ip_set(ScanPhase::Priors, prior_ips, &net.all_ports());
    let prior_hosts = group_by_host(&prior_observations, &net_features, &asn_of);
    let known: HashSet<(u32, u16)> = observations.iter().map(|o| (o.ip.0, o.port.0)).collect();

    let mut group = c.benchmark_group("prediction");
    group.sample_size(10);
    group.bench_function("rules_build", |b| {
        b.iter(|| FeatureRules::build(&model, &hosts, 1e-5))
    });
    let rules = FeatureRules::build(&model, &hosts, 1e-5);
    group.throughput(criterion::Throughput::Elements(prior_hosts.len() as u64));
    group.bench_function("match_priors_hosts", |b| {
        b.iter(|| build_predictions(&rules, &prior_hosts, &known, usize::MAX))
    });
    group.finish();

    // The serving-side warm query: the same rules behind a
    // `ServableModel`, answered per query. `scratch_reuse` is the shard
    // workers' path (one `PredictScratch` per worker lifetime);
    // `fresh_alloc` is what every query paid before — the per-query
    // `HashMap` was the hot-path allocation this pair exists to keep
    // honest.
    let servable = {
        use gps_core::snapshot::{ModelManifest, FORMAT_MAJOR, FORMAT_MINOR};
        gps_serve::ServableModel::from_snapshot(gps_core::ModelSnapshot {
            manifest: ModelManifest {
                format: (FORMAT_MAJOR, FORMAT_MINOR),
                universe_seed: 101,
                dataset_name: "bench".into(),
                step_prefix: 16,
                min_prob: 1e-5,
                interactions: Interactions::ALL,
                net_features: net_features.to_vec(),
                hosts_in: hosts.len(),
                distinct_keys: 0,
                cooccur_entries: 0,
                num_rules: rules.len(),
                num_priors: 0,
                checksum: 0,
            },
            model: gps_core::CondModel::from_parts(Default::default(), Interactions::ALL),
            rules,
            priors: Vec::new(),
            compiled: None,
        })
    };
    let queries: Vec<gps_serve::Query> = net
        .host_ips()
        .iter()
        .take(512)
        .enumerate()
        .map(|(i, &ip)| {
            let mut query = gps_serve::Query::new(Ip(ip))
                .with_open([[80u16, 443, 22][i % 3], [21u16, 8080, 53][i % 3]]);
            query.asn = net.asn_of(Ip(ip)).map(|a| a.0);
            query.top = 16;
            query
        })
        .collect();
    let mut group = c.benchmark_group("serve_warm_query");
    group.throughput(criterion::Throughput::Elements(queries.len() as u64));
    group.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for query in &queries {
                answered += servable.predict(query).len();
            }
            answered
        })
    });
    group.bench_function("scratch_reuse", |b| {
        let mut scratch = gps_serve::PredictScratch::default();
        b.iter(|| {
            let mut answered = 0usize;
            for query in &queries {
                answered += servable.predict_with(&mut scratch, query).len();
            }
            answered
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
