//! Ablation bench: which of the four interaction classes (Eq. 4–7) costs
//! what to model, and what each buys in predictive coverage.
//!
//! DESIGN.md calls this design choice out: GPS "independently models
//! different interactions of the three primary feature categories" and
//! §6.6 shows all of them contribute selected rules. The bench measures the
//! model-build cost of each configuration; the companion numbers (rules
//! produced per configuration) are printed once at startup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_core::{group_by_host, FeatureRules, Interactions, NetFeature};
use gps_engine::{Backend, ExecLedger};
use gps_scan::{ScanConfig, ScanPhase, Scanner};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::Ip;

const CONFIGS: [(&str, Interactions); 4] = [
    (
        "eq4_transport",
        Interactions {
            transport: true,
            transport_app: false,
            transport_net: false,
            transport_app_net: false,
        },
    ),
    (
        "eq4+5_app",
        Interactions {
            transport: true,
            transport_app: true,
            transport_net: false,
            transport_app_net: false,
        },
    ),
    (
        "eq4+6_net",
        Interactions {
            transport: true,
            transport_app: false,
            transport_net: true,
            transport_app_net: false,
        },
    ),
    ("eq4..7_all", Interactions::ALL),
];

fn bench_ablation(c: &mut Criterion) {
    let net = Internet::generate(&UniverseConfig::tiny(107));
    let mut scanner = Scanner::new(&net, ScanConfig::default());
    let take = net.host_ips().len() / 5;
    let ips: Vec<Ip> = net.host_ips().iter().take(take).map(|&ip| Ip(ip)).collect();
    let observations = scanner.scan_ip_set(ScanPhase::Seed, ips, &net.all_ports());
    let (observations, _) = gps_core::filter_pseudo_services(observations);
    let hosts = group_by_host(
        &observations,
        &[NetFeature::Slash(16), NetFeature::Asn],
        &|ip| net.asn_of(ip).map(|a| a.0),
    );

    // One-time report: what each configuration yields.
    for (name, interactions) in CONFIGS {
        let (model, stats) = gps_core::CondModel::build(
            &hosts,
            interactions,
            Backend::parallel(),
            &ExecLedger::new(),
        );
        let rules = FeatureRules::build(&model, &hosts, 1e-5);
        eprintln!(
            "[ablation] {name}: {} keys, {} co-occurrence entries, {} rules",
            stats.distinct_keys,
            stats.cooccur_entries,
            rules.len()
        );
    }

    let mut group = c.benchmark_group("interaction_ablation");
    group.sample_size(10);
    for (name, interactions) in CONFIGS {
        group.bench_with_input(BenchmarkId::new("build", name), &interactions, |b, &ix| {
            b.iter(|| {
                gps_core::CondModel::build(&hosts, ix, Backend::parallel(), &ExecLedger::new())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
