//! Benchmark: the simulated scan chain and the ZMap address permutation.
//!
//! Establishes that simulation overhead stays proportional to *responses*
//! (index-answered subnet scans) rather than probes, and pins the
//! permutation generator's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_scan::{CyclicPermutation, ScanConfig, ScanPhase, Scanner};
use gps_synthnet::{Internet, PortCensus, UniverseConfig};
use gps_types::{Port, Rng, Subnet};

fn bench_scanning(c: &mut Criterion) {
    let net = Internet::generate(&UniverseConfig::tiny(103));
    let census = PortCensus::new(&net, 0);
    let top = census.top_ports(1)[0];

    let mut group = c.benchmark_group("scanning");
    group.sample_size(20);

    group.bench_function("full_port_scan", |b| {
        b.iter(|| {
            let mut scanner = Scanner::new(&net, ScanConfig::default());
            scanner.full_scan_port(ScanPhase::Baseline, top).len()
        })
    });

    let block = net.topology().blocks()[0].subnet();
    for prefix in [16u8, 20, 24] {
        let subnet = Subnet::of_ip(block.base(), prefix);
        group.bench_with_input(
            BenchmarkId::new("subnet_scan", prefix),
            &subnet,
            |b, &subnet| {
                b.iter(|| {
                    let mut scanner = Scanner::new(&net, ScanConfig::default());
                    scanner
                        .scan_subnet_port(ScanPhase::Priors, subnet, top)
                        .len()
                })
            },
        );
    }

    group.bench_function("probe_miss", |b| {
        let mut scanner = Scanner::new(&net, ScanConfig::default());
        b.iter(|| scanner.syn_probe(ScanPhase::Baseline, gps_types::Ip(1), Port(1)))
    });

    for n in [65_536u64, 1 << 20] {
        group.bench_with_input(BenchmarkId::new("permutation", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Rng::new(7);
                CyclicPermutation::new(n, &mut rng)
                    .take(10_000)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scanning);
criterion_main!(benches);
