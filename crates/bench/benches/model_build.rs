//! Benchmark: the conditional-probability model build (§5.2 / §6.5).
//!
//! This is the computation the paper runs on BigQuery in 13 minutes and on
//! one core in ~9 days: the pairwise co-occurrence matrix over the seed
//! set. We measure it single-core vs parallel at growing seed sizes — the
//! scaling behaviour behind Table 2's compute rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_core::{group_by_host, Interactions, NetFeature};
use gps_engine::{Backend, ExecLedger};
use gps_scan::{ScanConfig, ScanPhase, Scanner};
use gps_synthnet::{Internet, UniverseConfig};
use gps_types::Ip;

fn seed_hosts(net: &Internet, fraction: f64) -> Vec<gps_core::HostRecord> {
    let mut scanner = Scanner::new(net, ScanConfig::default());
    let take = (net.host_ips().len() as f64 * fraction) as usize;
    let ips: Vec<Ip> = net.host_ips().iter().take(take).map(|&ip| Ip(ip)).collect();
    let observations = scanner.scan_ip_set(ScanPhase::Seed, ips, &net.all_ports());
    let (observations, _) = gps_core::filter_pseudo_services(observations);
    group_by_host(
        &observations,
        &[NetFeature::Slash(16), NetFeature::Asn],
        &|ip| net.asn_of(ip).map(|a| a.0),
    )
}

fn bench_model_build(c: &mut Criterion) {
    let net = Internet::generate(&UniverseConfig::tiny(99));
    let mut group = c.benchmark_group("model_build");
    group.sample_size(10);

    for fraction in [0.05, 0.2, 0.5] {
        let hosts = seed_hosts(&net, fraction);
        group.throughput(criterion::Throughput::Elements(hosts.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("single_core", hosts.len()),
            &hosts,
            |b, hosts| {
                b.iter(|| {
                    gps_core::CondModel::build(
                        hosts,
                        Interactions::ALL,
                        Backend::SingleCore,
                        &ExecLedger::new(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", hosts.len()),
            &hosts,
            |b, hosts| {
                b.iter(|| {
                    gps_core::CondModel::build(
                        hosts,
                        Interactions::ALL,
                        Backend::parallel(),
                        &ExecLedger::new(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_build);
criterion_main!(benches);
