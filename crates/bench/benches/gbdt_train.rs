//! Benchmark: GBDT training — the per-port cost of the XGBoost-scanner
//! baseline.
//!
//! §2: prior work needs ~70 GPU-seconds per port and must train its 65K
//! models *sequentially*. This bench pins our from-scratch trainer's
//! per-port cost, which multiplied by 65K ports is the comparison §6.5
//! makes against GPS's 13-minute parallel computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gps_baselines::{Gbdt, GbdtParams, SparseMatrix};
use gps_types::Rng;

fn synthetic_training_set(rows: usize, features: u32, rng: &mut Rng) -> (SparseMatrix, Vec<bool>) {
    let mut matrix = SparseMatrix::new(features);
    let mut labels = Vec::with_capacity(rows);
    for _ in 0..rows {
        let k = 1 + rng.gen_range(6) as usize;
        let fs: Vec<u32> = (0..k)
            .map(|_| rng.gen_range(features as u64) as u32)
            .collect();
        // Label correlated with feature 0 plus noise.
        let label = fs.contains(&0) ^ rng.chance(0.1);
        matrix.push_row(fs);
        labels.push(label);
    }
    (matrix, labels)
}

fn bench_gbdt(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbdt");
    group.sample_size(10);
    for rows in [5_000usize, 20_000] {
        let mut rng = Rng::new(rows as u64);
        let (matrix, labels) = synthetic_training_set(rows, 64, &mut rng);
        group.throughput(criterion::Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("train_per_port", rows), &rows, |b, _| {
            b.iter(|| {
                Gbdt::train(
                    &matrix,
                    &labels,
                    GbdtParams {
                        n_trees: 20,
                        max_depth: 4,
                        ..Default::default()
                    },
                    &mut Rng::new(1),
                )
            })
        });
    }

    // Inference throughput (candidate scoring dominates the scanner's
    // wall-clock at full scale).
    let mut rng = Rng::new(9);
    let (matrix, labels) = synthetic_training_set(10_000, 64, &mut rng);
    let model = Gbdt::train(&matrix, &labels, GbdtParams::default(), &mut Rng::new(2));
    group.throughput(criterion::Throughput::Elements(10_000));
    group.bench_function("score_10k_candidates", |b| {
        b.iter(|| {
            (0..10_000u32)
                .map(|i| model.predict_logit(&[i % 64, (i * 7) % 64]))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gbdt);
criterion_main!(benches);
