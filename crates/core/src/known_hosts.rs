//! Known-host prediction mode (§7's IPv6 note).
//!
//! GPS's seed/priors machinery needs exhaustive random scanning, which is
//! impossible over IPv6's address space. But *"given known IPv6 addresses
//! that respond on at least one port, GPS can be used to predict other
//! responsive services on the known IPv6 addresses"* — i.e. the prediction
//! phase (§5.4) runs standalone against any hitlist of already-observed
//! services. The same mode is useful over IPv4 for incremental re-scans: a
//! search engine that already has one service per host can expand coverage
//! without any priors scan.
//!
//! This module packages that mode: train a model on whatever labelled
//! corpus exists, then expand a hitlist of observations into an ordered
//! predictions list.

use std::collections::HashSet;

use gps_scan::ServiceObservation;
use gps_types::Ip;

use crate::compiled::CompiledRules;
use crate::config::{GpsConfig, Interactions};
use crate::host::{group_by_host, HostRecord};
use crate::model::CondModel;
use crate::predict::{build_predictions_compiled, FeatureRules, Prediction};

/// A trained expander: rules distilled from a labelled corpus, applicable to
/// any future hitlist.
///
/// The rules are compiled once at train time into the arena-backed
/// [`CompiledRules`] form, so every `expand` call runs the same dense
/// kernel the serving layer uses.
pub struct KnownHostExpander {
    rules: CompiledRules,
    net_features: Vec<crate::config::NetFeature>,
    interactions: Interactions,
}

impl KnownHostExpander {
    /// Distill prediction rules from a labelled corpus (e.g. a previous
    /// GPS run's discoveries, or an IPv6 hitlist scanned across ports).
    ///
    /// `asn_of` supplies network features; `min_prob` is the §5.4 discard
    /// threshold.
    pub fn train(
        corpus: &[ServiceObservation],
        config: &GpsConfig,
        min_prob: f64,
        asn_of: &dyn Fn(Ip) -> Option<u32>,
    ) -> (KnownHostExpander, crate::model::BuildStats) {
        let hosts = group_by_host(corpus, &config.net_features, asn_of);
        let ledger = gps_engine::ExecLedger::new();
        let (model, stats) = CondModel::build(&hosts, config.interactions, config.backend, &ledger);
        let rules = FeatureRules::build(&model, &hosts, min_prob);
        (
            KnownHostExpander {
                rules: CompiledRules::from_rules(&rules),
                net_features: config.net_features.clone(),
                interactions: config.interactions,
            },
            stats,
        )
    }

    /// Number of distilled rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Expand a hitlist: for every known host, predict its remaining
    /// services, ordered by descending confidence. Known (ip, port) pairs
    /// are never re-emitted.
    pub fn expand(
        &self,
        hitlist: &[ServiceObservation],
        max_predictions: usize,
        asn_of: &dyn Fn(Ip) -> Option<u32>,
    ) -> Vec<Prediction> {
        let hosts: Vec<HostRecord> = group_by_host(hitlist, &self.net_features, asn_of);
        let known: HashSet<(u32, u16)> = hitlist.iter().map(|o| (o.ip.0, o.port.0)).collect();
        let _ = self.interactions; // rule keys already encode the classes
        build_predictions_compiled(&self.rules, &hosts, &known, max_predictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpsConfig;
    use gps_scan::{ScanConfig, ScanPhase, Scanner};
    use gps_synthnet::{Internet, UniverseConfig};

    fn corpus_and_hitlist(net: &Internet) -> (Vec<ServiceObservation>, Vec<ServiceObservation>) {
        let mut scanner = Scanner::new(net, ScanConfig::default());
        let all = net.all_ports();
        let half = net.host_ips().len() / 2;
        let corpus_ips: Vec<Ip> = net.host_ips()[..half].iter().map(|&ip| Ip(ip)).collect();
        let corpus = scanner.scan_ip_set(ScanPhase::Seed, corpus_ips, &all);
        let (corpus, _) = crate::filter::filter_pseudo_services(corpus);

        // Hitlist: ONE service per host from the other half (the "known
        // IPv6 addresses responding on at least one port").
        let mut hitlist = Vec::new();
        for &ip in net.host_ips()[half..].iter().take(2000) {
            let host = net.host(Ip(ip)).unwrap();
            if let Some(s) = host.services.iter().find(|s| s.alive(0)) {
                if let Some(obs) = scanner.scan_service(ScanPhase::Baseline, Ip(ip), s.port) {
                    hitlist.push(obs);
                }
            }
        }
        (corpus, hitlist)
    }

    #[test]
    fn expands_hitlist_to_real_services() {
        let net = Internet::generate(&UniverseConfig::tiny(314));
        let (corpus, hitlist) = corpus_and_hitlist(&net);
        let config = GpsConfig::default();
        let asn_of = |ip: Ip| net.asn_of(ip).map(|a| a.0);
        let (expander, stats) = KnownHostExpander::train(&corpus, &config, 1e-4, &asn_of);
        assert!(stats.distinct_keys > 100);
        assert!(expander.num_rules() > 50);

        let predictions = expander.expand(&hitlist, 100_000, &asn_of);
        assert!(!predictions.is_empty());
        // Ordered by confidence.
        assert!(predictions.windows(2).all(|w| w[0].prob >= w[1].prob));

        // A good share of the high-confidence predictions are real.
        let top: Vec<_> = predictions.iter().take(500).collect();
        let hits = top
            .iter()
            .filter(|p| net.service(p.ip, p.port, 0).is_some())
            .count();
        let precision = hits as f64 / top.len() as f64;
        assert!(precision > 0.5, "top-500 precision {precision}");

        // And they meaningfully grow coverage on hitlist hosts.
        let hit_hosts: HashSet<u32> = hitlist.iter().map(|o| o.ip.0).collect();
        let new_found = predictions
            .iter()
            .filter(|p| hit_hosts.contains(&p.ip.0))
            .filter(|p| net.service(p.ip, p.port, 0).is_some())
            .count();
        assert!(
            new_found > hitlist.len() / 4,
            "found {new_found} new services"
        );
    }

    #[test]
    fn never_repredicts_known_pairs() {
        let net = Internet::generate(&UniverseConfig::tiny(314));
        let (corpus, hitlist) = corpus_and_hitlist(&net);
        let asn_of = |ip: Ip| net.asn_of(ip).map(|a| a.0);
        let (expander, _) = KnownHostExpander::train(&corpus, &GpsConfig::default(), 1e-4, &asn_of);
        let known: HashSet<(u32, u16)> = hitlist.iter().map(|o| (o.ip.0, o.port.0)).collect();
        for p in expander.expand(&hitlist, usize::MAX, &asn_of) {
            assert!(!known.contains(&(p.ip.0, p.port.0)));
        }
    }

    #[test]
    fn predictions_only_target_hitlist_hosts() {
        let net = Internet::generate(&UniverseConfig::tiny(314));
        let (corpus, hitlist) = corpus_and_hitlist(&net);
        let asn_of = |ip: Ip| net.asn_of(ip).map(|a| a.0);
        let (expander, _) = KnownHostExpander::train(&corpus, &GpsConfig::default(), 1e-4, &asn_of);
        let hosts: HashSet<u32> = hitlist.iter().map(|o| o.ip.0).collect();
        for p in expander.expand(&hitlist, usize::MAX, &asn_of) {
            assert!(
                hosts.contains(&p.ip.0),
                "predicted off-hitlist host {}",
                p.ip
            );
        }
    }
}
