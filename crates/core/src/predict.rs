//! Predicting additional services (§5.4).
//!
//! Once the priors scan has found at least one service per host, GPS builds
//! the **most predictive feature values** list:
//!
//! 1. for each seed service (IP, Portₐ), the feature tuple maximizing
//!    P(Portₐ | tuple) enters the list (probabilities below the random-probe
//!    hit rate are discarded) — *every* predictable seed service is thereby
//!    guaranteed a matching rule;
//! 2. feature values are extracted from each responsive priors-scan service;
//! 3. any service matching a listed tuple contributes its predicted
//!    (IP, Portₐ) to the predictions list, ordered by descending
//!    predictability.

use std::collections::{HashMap, HashSet};

use gps_types::{Ip, Port, ServiceKey};

use crate::compiled::CompiledRules;
use crate::host::HostRecord;
use crate::model::{CondKey, CondModel};

/// The "most predictive feature values" list: tuple → predicted ports.
#[derive(Debug, Default, Clone)]
pub struct FeatureRules {
    rules: HashMap<CondKey, Vec<(Port, f64)>>,
    num_rules: usize,
}

impl FeatureRules {
    /// Reassemble rules from stored parts (snapshot deserialization).
    pub fn from_parts(rules: HashMap<CondKey, Vec<(Port, f64)>>) -> FeatureRules {
        let num_rules = rules.values().map(Vec::len).sum();
        FeatureRules { rules, num_rules }
    }

    /// Step 1: scan every seed service, keep its argmax feature tuple.
    pub fn build(model: &CondModel, seed_hosts: &[HostRecord], min_prob: f64) -> FeatureRules {
        let mut rules: HashMap<CondKey, HashMap<Port, f64>> = HashMap::new();
        for host in seed_hosts {
            if host.services.len() < 2 {
                continue;
            }
            for a in &host.services {
                if let Some((_idx, key, p)) = model.best_predictor_for(host, a.port) {
                    // Discard probabilities at/below the random hit rate —
                    // services on effectively random ports are unpredictable.
                    if p >= min_prob {
                        let slot = rules.entry(key).or_default().entry(a.port).or_insert(0.0);
                        if p > *slot {
                            *slot = p;
                        }
                    }
                }
            }
        }
        let mut num_rules = 0;
        let rules: HashMap<CondKey, Vec<(Port, f64)>> = rules
            .into_iter()
            .map(|(key, ports)| {
                let mut v: Vec<(Port, f64)> = ports.into_iter().collect();
                // `total_cmp`, not `partial_cmp(..).unwrap()`: a NaN
                // probability must not panic the pipeline (it sorts
                // deterministically and never beats a real rule downstream,
                // since `prob > slot` rejects NaN).
                v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                num_rules += v.len();
                (key, v)
            })
            .collect();
        FeatureRules { rules, num_rules }
    }

    /// Number of distinct (tuple → port) rules.
    pub fn len(&self) -> usize {
        self.num_rules
    }

    pub fn is_empty(&self) -> bool {
        self.num_rules == 0
    }

    /// Number of distinct feature tuples.
    pub fn num_keys(&self) -> usize {
        self.rules.len()
    }

    pub fn get(&self, key: &CondKey) -> Option<&[(Port, f64)]> {
        self.rules.get(key).map(|v| v.as_slice())
    }

    /// Iterate all (tuple, predicted ports) rules.
    pub fn iter(&self) -> impl Iterator<Item = (&CondKey, &Vec<(Port, f64)>)> {
        self.rules.iter()
    }
}

/// One prediction: probe (ip, port); `prob` is the model's confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    pub ip: Ip,
    pub port: Port,
    pub prob: f64,
}

impl Prediction {
    pub fn key(&self) -> ServiceKey {
        ServiceKey::new(self.ip, self.port)
    }
}

/// Steps 2–3: match priors-scan hosts against the rules and emit the
/// ordered predictions list.
///
/// * `prior_hosts` — host-grouped responsive services from the priors scan;
/// * `known` — (ip, port) pairs already observed (seed + priors); never
///   re-predicted;
/// * `max_predictions` — hard cap (keeps the highest-probability entries).
pub fn build_predictions(
    rules: &FeatureRules,
    prior_hosts: &[HostRecord],
    known: &HashSet<(u32, u16)>,
    max_predictions: usize,
) -> Vec<Prediction> {
    build_predictions_compiled(
        &CompiledRules::from_rules(rules),
        prior_hosts,
        known,
        max_predictions,
    )
}

/// [`build_predictions`] against an already-compiled rule arena — the form
/// the pipeline and [`KnownHostExpander`](crate::KnownHostExpander) use, so
/// repeated expansion passes skip recompilation.
pub fn build_predictions_compiled(
    rules: &CompiledRules,
    prior_hosts: &[HostRecord],
    known: &HashSet<(u32, u16)>,
    max_predictions: usize,
) -> Vec<Prediction> {
    let mut best: HashMap<(u32, u16), f64> = HashMap::new();
    for host in prior_hosts {
        let open: HashSet<u16> = host.services.iter().map(|s| s.port.0).collect();
        for service in &host.services {
            crate::host::service_keys(
                service,
                &host.nets,
                // Match with the full key family; rules built from a reduced
                // interaction set simply contain fewer keys.
                crate::config::Interactions::ALL,
                &mut |key| {
                    if let Some(row) = rules.row(&key) {
                        let (ports, prob_bits) = rules.row_slices(row);
                        for (&port, &bits) in ports.iter().zip(prob_bits) {
                            if open.contains(&port) || known.contains(&(host.ip.0, port)) {
                                continue;
                            }
                            let prob = f64::from_bits(bits);
                            let slot = best.entry((host.ip.0, port)).or_insert(0.0);
                            if prob > *slot {
                                *slot = prob;
                            }
                        }
                    }
                },
            );
        }
    }

    let mut predictions: Vec<Prediction> = best
        .into_iter()
        .map(|((ip, port), prob)| Prediction {
            ip: Ip(ip),
            port: Port(port),
            prob,
        })
        .collect();
    // Descending predictability; deterministic tiebreak. `total_cmp` keeps
    // a NaN probability from panicking the sort (see `FeatureRules::build`).
    predictions.sort_by(|a, b| {
        b.prob
            .total_cmp(&a.prob)
            .then(a.ip.cmp(&b.ip))
            .then(a.port.cmp(&b.port))
    });
    predictions.truncate(max_predictions);
    predictions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Interactions, NetFeature};
    use crate::host::group_by_host;
    use crate::model::CondModel;
    use gps_engine::{Backend, ExecLedger};
    use gps_scan::ServiceObservation;
    use gps_types::{FeatureKind, FeatureValue, Protocol, Sym};

    fn obs(ip: u32, port: u16, feature: Option<u32>) -> ServiceObservation {
        ServiceObservation {
            ip: Ip(ip),
            port: Port(port),
            ttl: 60,
            protocol: Protocol::Http,
            content: Sym(0),
            features: feature
                .map(|v| vec![FeatureValue::new(FeatureKind::HttpBodyHash, Sym(v))])
                .unwrap_or_default(),
        }
    }

    /// Seed: 5 hosts with body-hash 7 on port 80 all run 8082.
    fn trained() -> (Vec<HostRecord>, CondModel) {
        let mut observations = Vec::new();
        for ip in 1..=5u32 {
            observations.push(obs(ip, 80, Some(7)));
            observations.push(obs(ip, 8082, None));
        }
        let hosts = group_by_host(&observations, &[NetFeature::Slash(16)], &|_| None);
        let (model, _) = CondModel::build(
            &hosts,
            Interactions::ALL,
            Backend::SingleCore,
            &ExecLedger::new(),
        );
        (hosts, model)
    }

    #[test]
    fn rules_capture_the_pattern() {
        let (hosts, model) = trained();
        let rules = FeatureRules::build(&model, &hosts, 1e-5);
        assert!(!rules.is_empty());
        // Every key for 8082 given the port-80 evidence ties at p = 1.0 in
        // this homogeneous seed, so the argmax resolves to the simplest
        // class: the bare Port(80) tuple.
        let key = CondKey::Port(Port(80));
        let targets = rules.get(&key).expect("rule exists");
        assert_eq!(targets[0].0, Port(8082));
        assert!((targets[0].1 - 1.0).abs() < 1e-12);
        // The refined tuple was not selected (it tied, and ties prefer
        // simpler keys).
        let refined = CondKey::PortApp(
            Port(80),
            FeatureValue::new(FeatureKind::HttpBodyHash, Sym(7)),
        );
        assert!(rules.get(&refined).is_none());
    }

    #[test]
    fn threshold_prunes_weak_rules() {
        let (hosts, model) = trained();
        let none = FeatureRules::build(&model, &hosts, 1.01);
        assert!(none.is_empty(), "threshold above 1.0 kills everything");
        let all = FeatureRules::build(&model, &hosts, 0.0);
        assert!(all.len() >= 2);
    }

    #[test]
    fn predictions_follow_matched_rules() {
        let (hosts, model) = trained();
        let rules = FeatureRules::build(&model, &hosts, 1e-5);
        // A new host seen in the priors scan with the same banner on 80.
        let prior = group_by_host(&[obs(100, 80, Some(7))], &[NetFeature::Slash(16)], &|_| {
            None
        });
        let known = HashSet::new();
        let preds = build_predictions(&rules, &prior, &known, 1000);
        assert!(
            preds
                .iter()
                .any(|p| p.ip == Ip(100) && p.port == Port(8082)),
            "must predict 8082 on the new host: {preds:?}"
        );
        // Highest-probability first.
        assert!(preds.windows(2).all(|w| w[0].prob >= w[1].prob));
    }

    #[test]
    fn known_and_open_ports_are_not_repredicted() {
        let (hosts, model) = trained();
        let rules = FeatureRules::build(&model, &hosts, 1e-5);
        // Prior host already observed on both ports.
        let prior = group_by_host(
            &[obs(100, 80, Some(7)), obs(100, 8082, None)],
            &[NetFeature::Slash(16)],
            &|_| None,
        );
        let preds = build_predictions(&rules, &prior, &HashSet::new(), 1000);
        assert!(
            !preds
                .iter()
                .any(|p| p.ip == Ip(100) && p.port == Port(8082)),
            "open port must not be re-predicted"
        );
        // Same via the known set.
        let prior = group_by_host(&[obs(100, 80, Some(7))], &[NetFeature::Slash(16)], &|_| {
            None
        });
        let known: HashSet<(u32, u16)> = [(100u32, 8082u16)].into_iter().collect();
        let preds = build_predictions(&rules, &prior, &known, 1000);
        assert!(!preds
            .iter()
            .any(|p| p.ip == Ip(100) && p.port == Port(8082)));
    }

    #[test]
    fn unmatched_hosts_produce_nothing() {
        let (hosts, model) = trained();
        let rules = FeatureRules::build(&model, &hosts, 1e-5);
        // Different banner (Sym 9) and different /16 ⇒ only the bare Port
        // key might match.
        let prior = group_by_host(
            &[obs(0xFF000001, 4444, Some(9))],
            &[NetFeature::Slash(16)],
            &|_| None,
        );
        let preds = build_predictions(&rules, &prior, &HashSet::new(), 1000);
        assert!(preds.is_empty(), "{preds:?}");
    }

    #[test]
    fn nan_probability_rule_does_not_panic_or_win() {
        // Regression: ordering used `partial_cmp(..).unwrap()`, so a NaN
        // probability (e.g. from a hand-edited snapshot) panicked the
        // pipeline. It must sort deterministically and never outrank a
        // real prediction.
        let mut raw: HashMap<CondKey, Vec<(Port, f64)>> = HashMap::new();
        raw.insert(
            CondKey::Port(Port(80)),
            vec![(Port(9999), f64::NAN), (Port(8082), 0.9)],
        );
        let rules = FeatureRules::from_parts(raw);
        let prior = group_by_host(&[obs(100, 80, Some(7))], &[NetFeature::Slash(16)], &|_| {
            None
        });
        let preds = build_predictions(&rules, &prior, &HashSet::new(), 1000);
        // The NaN never beats the 0.0 slot: port 9999 surfaces with the
        // or_insert default, ranked below the real prediction.
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].port, Port(8082));
        assert!((preds[0].prob - 0.9).abs() < 1e-12);
        assert_eq!(preds[1].port, Port(9999));
        assert_eq!(preds[1].prob, 0.0);
    }

    #[test]
    fn max_predictions_keeps_best() {
        let (hosts, model) = trained();
        let rules = FeatureRules::build(&model, &hosts, 0.0);
        let mut prior_observations = Vec::new();
        for ip in 200..260u32 {
            prior_observations.push(obs(ip, 80, Some(7)));
        }
        let prior = group_by_host(&prior_observations, &[NetFeature::Slash(16)], &|_| None);
        let capped = build_predictions(&rules, &prior, &HashSet::new(), 10);
        assert_eq!(capped.len(), 10);
        let full = build_predictions(&rules, &prior, &HashSet::new(), usize::MAX);
        let min_kept = capped.iter().map(|p| p.prob).fold(f64::INFINITY, f64::min);
        let max_dropped = full[10..].iter().map(|p| p.prob).fold(0.0, f64::max);
        assert!(min_kept >= max_dropped);
    }
}
