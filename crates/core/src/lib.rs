//! # gps-core
//!
//! The paper's contribution: GPS, a predictive framework that finds IPv4
//! services across all 65K ports with no prior knowledge, built on simple
//! conditional probabilities (*Predicting IPv4 Services Across All Ports*,
//! SIGCOMM 2022).
//!
//! The four-phase pipeline (§5):
//!
//! 1. **Seed scan** ([`dataset`], [`pipeline`]) — random-sample scan across
//!    ports, filtered for pseudo-services ([`filter`], Appendix B);
//! 2. **Probabilistic model** ([`model`]) — conditional probabilities over
//!    the four feature-interaction classes of Equations 4–7, computed as a
//!    parallelizable co-occurrence matrix;
//! 3. **Priors scan** ([`priors`]) — find the most predictive first service
//!    on every host by exhaustively scanning (port, subnet) tuples sorted by
//!    maximal coverage (§5.3);
//! 4. **Prediction scan** ([`predict`]) — expand each discovered service
//!    through the "most predictive feature values" list (§5.4).
//!
//! Coverage metrics (Equations 1–2), precision, and bandwidth accounting in
//! the paper's 100%-scan unit live in [`metrics`].
//!
//! ## Quick start
//!
//! ```
//! use gps_core::{censys_dataset, run_gps, GpsConfig};
//! use gps_synthnet::{Internet, UniverseConfig};
//!
//! let net = Internet::generate(&UniverseConfig::tiny(7));
//! let dataset = censys_dataset(&net, 100, 0.05, 0, 1);
//! let run = run_gps(&net, &dataset, &GpsConfig {
//!     seed_fraction: 0.05,
//!     step_prefix: 20,
//!     ..GpsConfig::default()
//! });
//! println!(
//!     "found {:.1}% of services with {:.1} full-scan units",
//!     100.0 * run.fraction_of_services(),
//!     run.total_scans(),
//! );
//! assert!(run.fraction_of_services() > 0.0);
//! ```

pub mod compiled;
pub mod config;
pub mod dataset;
pub mod filter;
pub mod host;
pub mod known_hosts;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod predict;
pub mod priors;
pub mod snapshot;

pub use compiled::{CompiledModel, CompiledPriors, CompiledRules};
pub use config::{GpsConfig, Interactions, MinProb, NetFeature};
pub use dataset::{censys_dataset, lzr_dataset, Dataset};
pub use filter::{filter_pseudo_services, FilterStats, MAX_REAL_SERVICES_PER_HOST};
pub use host::{group_by_host, HostRecord};
pub use known_hosts::KnownHostExpander;
pub use metrics::{CoverageTracker, CurvePoint, DiscoveryCurve, GroundTruth};
pub use model::{BuildStats, CondKey, CondModel, KeyStats, NetKey};
pub use pipeline::{run_gps, GpsRun, PhaseTimings};
pub use predict::{build_predictions, build_predictions_compiled, FeatureRules, Prediction};
pub use priors::{build_priors_list, PriorsEntry};
pub use snapshot::{ModelManifest, ModelSnapshot, SnapshotError};
