//! Evaluation datasets (§6.1 methodology).
//!
//! The paper evaluates GPS against two ground truths:
//!
//! - **Censys-style**: 100% scans of the most popular 2K ports;
//! - **LZR-style**: a 1% random IPv4 sample across all 65K ports.
//!
//! Each dataset randomly assigns every IP address (with its services) to a
//! *seed* or *test* side; GPS trains on the seed side and is scored on the
//! test side. The LZR evaluation additionally filters both sides to ports
//! with more than two responsive IP addresses.
//!
//! A [`Dataset`] carries the scanner-level view filters (which IPs/ports are
//! visible at all) so the pipeline literally cannot observe anything outside
//! the dataset — the same constraint the paper's evaluation has.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use gps_scan::CyclicPermutation;
use gps_synthnet::Internet;
use gps_types::{PortSet, Rng, ServiceKey};

use crate::metrics::GroundTruth;

/// A train/test split over a (possibly restricted) view of the universe.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    /// Day the dataset snapshot observes.
    pub day: u16,
    /// Visible ports (None = all 65K).
    pub ports: Option<Arc<PortSet>>,
    /// Visible addresses (None = whole universe) — the LZR 1% sample.
    pub visible_ips: Option<Arc<HashSet<u32>>>,
    /// Seed-side addresses (responsive or not); the seed scan probes these.
    pub seed_ips: Arc<HashSet<u32>>,
    /// Test-side ground truth (real services only, filters applied).
    pub test: GroundTruth,
    /// Ports-with-more-than-N-IPs filter applied to both sides (LZR: 2).
    pub min_ips_per_port: u64,
}

impl Dataset {
    /// Whether a service key belongs to the test ground truth.
    pub fn in_test(&self, key: &ServiceKey) -> bool {
        self.test.contains(key)
    }

    /// Number of seed-side addresses.
    pub fn seed_size(&self) -> u64 {
        self.seed_ips.len() as u64
    }
}

/// Sample `count` distinct addresses from the allocated universe, in ZMap
/// permutation order (uniform without replacement).
fn sample_universe_ips(net: &Internet, count: u64, seed: u64) -> HashSet<u32> {
    let mut rng = Rng::new(seed);
    let blocks = net.topology().blocks();
    CyclicPermutation::new(net.universe_size(), &mut rng)
        .take(count as usize)
        .map(|idx| blocks[(idx / 65536) as usize].base | (idx % 65536) as u32)
        .collect()
}

/// Collect the per-port responsive-IP counts of a candidate service set and
/// drop services on ports at or below the threshold.
fn apply_port_threshold(
    services: Vec<ServiceKey>,
    min_ips_per_port: u64,
) -> (Vec<ServiceKey>, usize) {
    if min_ips_per_port == 0 {
        let n = count_ports(&services);
        return (services, n);
    }
    let mut per_port: HashMap<u16, u64> = HashMap::new();
    for s in &services {
        *per_port.entry(s.port.0).or_default() += 1;
    }
    let keep: HashSet<u16> = per_port
        .iter()
        .filter(|&(_, &c)| c > min_ips_per_port)
        .map(|(&p, _)| p)
        .collect();
    let filtered: Vec<ServiceKey> = services
        .into_iter()
        .filter(|s| keep.contains(&s.port.0))
        .collect();
    let n = keep.len();
    (filtered, n)
}

fn count_ports(services: &[ServiceKey]) -> usize {
    let ports: HashSet<u16> = services.iter().map(|s| s.port.0).collect();
    ports.len()
}

/// Build the Censys-style dataset: full visibility of the `top_k_ports` most
/// populated ports, seed split of `seed_fraction` of the address space.
pub fn censys_dataset(
    net: &Internet,
    top_k_ports: usize,
    seed_fraction: f64,
    day: u16,
    split_seed: u64,
) -> Dataset {
    let census = gps_synthnet::PortCensus::new(net, day);
    let ports = Arc::new(PortSet::from_ports(census.top_ports(top_k_ports)));
    let seed_count = (net.universe_size() as f64 * seed_fraction).round() as u64;
    let seed_ips = Arc::new(sample_universe_ips(net, seed_count, split_seed));

    let services = gps_synthnet::stats::services_where(
        net,
        day,
        |p| ports.contains(p),
        |ip| !seed_ips.contains(&ip.0),
    );
    let (services, _) = apply_port_threshold(services, 0);
    Dataset {
        name: format!("censys-top{top_k_ports}-seed{:.2}%", seed_fraction * 100.0),
        day,
        ports: Some(ports),
        visible_ips: None,
        seed_ips,
        test: GroundTruth::from_services(services),
        min_ips_per_port: 0,
    }
}

/// Build the LZR-style dataset: a `sample_fraction` random-address view of
/// all ports, split `seed_share`/(1−`seed_share`) into seed/test, both sides
/// filtered to ports with more than `min_ips_per_port` responsive IPs.
pub fn lzr_dataset(
    net: &Internet,
    sample_fraction: f64,
    seed_share: f64,
    min_ips_per_port: u64,
    day: u16,
    split_seed: u64,
) -> Dataset {
    let sample_count = (net.universe_size() as f64 * sample_fraction).round() as u64;
    let sample: Vec<u32> = {
        let mut v: Vec<u32> = sample_universe_ips(net, sample_count, split_seed)
            .into_iter()
            .collect();
        v.sort_unstable();
        v
    };
    // Split the sample into seed/test deterministically.
    let mut rng = Rng::new(split_seed ^ 0xD15C);
    let mut indices: Vec<usize> = (0..sample.len()).collect();
    rng.shuffle(&mut indices);
    let seed_count = (sample.len() as f64 * seed_share).round() as usize;
    let seed_ips: HashSet<u32> = indices[..seed_count].iter().map(|&i| sample[i]).collect();
    let visible: HashSet<u32> = sample.iter().copied().collect();

    let services = gps_synthnet::stats::services_where(
        net,
        day,
        |_| true,
        |ip| visible.contains(&ip.0) && !seed_ips.contains(&ip.0),
    );
    let (services, _) = apply_port_threshold(services, min_ips_per_port);
    Dataset {
        name: format!(
            "lzr-sample{:.2}%-seed{:.2}%",
            sample_fraction * 100.0,
            sample_fraction * seed_share * 100.0
        ),
        day,
        ports: None,
        visible_ips: Some(Arc::new(visible)),
        seed_ips: Arc::new(seed_ips),
        test: GroundTruth::from_services(services),
        min_ips_per_port,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_synthnet::UniverseConfig;

    fn net() -> Internet {
        Internet::generate(&UniverseConfig::tiny(55))
    }

    #[test]
    fn censys_split_is_disjoint() {
        let net = net();
        let ds = censys_dataset(&net, 100, 0.05, 0, 1);
        assert!(ds.seed_size() > 0);
        // No test service on a seed IP.
        for key in ds.test.services().iter().take(200) {
            assert!(!ds.seed_ips.contains(&key.ip.0));
        }
        // Test services only on allowed ports.
        let ports = ds.ports.as_ref().unwrap();
        for key in ds.test.services().iter().take(200) {
            assert!(ports.contains(key.port));
        }
    }

    #[test]
    fn censys_seed_size_matches_fraction() {
        let net = net();
        let ds = censys_dataset(&net, 100, 0.05, 0, 1);
        let expect = (net.universe_size() as f64 * 0.05).round() as u64;
        assert_eq!(ds.seed_size(), expect);
    }

    #[test]
    fn lzr_respects_sample_and_threshold() {
        let net = net();
        let ds = lzr_dataset(&net, 0.20, 0.5, 2, 0, 2);
        let visible = ds.visible_ips.as_ref().unwrap();
        for key in ds.test.services().iter().take(500) {
            assert!(visible.contains(&key.ip.0));
            assert!(!ds.seed_ips.contains(&key.ip.0));
        }
        // Every surviving port has >2 responsive test IPs.
        for (port, count) in ds.test.per_port() {
            assert!(*count > 2, "port {port} kept with only {count} IPs");
        }
    }

    #[test]
    fn lzr_seed_share_splits_sample() {
        let net = net();
        let ds = lzr_dataset(&net, 0.10, 0.5, 2, 0, 3);
        let visible_n = ds.visible_ips.as_ref().unwrap().len();
        let seed_n = ds.seed_ips.len();
        assert!((seed_n as f64 / visible_n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn datasets_are_deterministic() {
        let net = net();
        let a = lzr_dataset(&net, 0.10, 0.5, 2, 0, 42);
        let b = lzr_dataset(&net, 0.10, 0.5, 2, 0, 42);
        assert_eq!(a.test.total(), b.test.total());
        assert_eq!(a.seed_ips, b.seed_ips);
        let c = lzr_dataset(&net, 0.10, 0.5, 2, 0, 43);
        assert_ne!(a.seed_ips, c.seed_ips);
    }

    #[test]
    fn threshold_filter_unit() {
        use gps_types::{Ip, Port};
        let mk = |ip: u32, port: u16| ServiceKey::new(Ip(ip), Port(port));
        // Port 10: 3 IPs; port 20: 2 IPs.
        let services = vec![mk(1, 10), mk(2, 10), mk(3, 10), mk(1, 20), mk(2, 20)];
        let (kept, ports) = apply_port_threshold(services, 2);
        assert_eq!(ports, 1);
        assert!(kept.iter().all(|k| k.port == Port(10)));
        assert_eq!(kept.len(), 3);
    }
}
