//! GPS configuration (the paper's user-facing parameters).
//!
//! §5 gives GPS exactly two sizing parameters — the **seed size** (§5.1) and
//! the **scanning step size** (§5.3) — plus the bandwidth constraint `c1`
//! of Equation 3. The remaining knobs here expose design-ablation switches
//! (which of the four interaction classes to model, which network features
//! to use per Appendix C) and the prediction threshold of §5.4.

use gps_engine::Backend;
use gps_types::GpsError;

/// Which network-layer features the model conditions on (Appendix C sweeps
/// /16../23 and ASN; the shipped configuration keeps /16 + ASN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFeature {
    /// The enclosing subnet at this prefix length.
    Slash(u8),
    /// The autonomous system.
    Asn,
}

impl NetFeature {
    pub fn label(self) -> String {
        match self {
            NetFeature::Slash(n) => format!("/{n}"),
            NetFeature::Asn => "ASN".to_string(),
        }
    }
}

/// Which of the four conditional-probability classes (Eq. 4–7) to model.
/// All four are on in the paper's configuration; ablation benches switch
/// them individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interactions {
    /// Eq. 4: P(Portₐ | Port_b)
    pub transport: bool,
    /// Eq. 5: P(Portₐ | Port_b, App_b)
    pub transport_app: bool,
    /// Eq. 6: P(Portₐ | Port_b, Net)
    pub transport_net: bool,
    /// Eq. 7: P(Portₐ | Port_b, App_b, Net)
    pub transport_app_net: bool,
}

impl Interactions {
    pub const ALL: Interactions = Interactions {
        transport: true,
        transport_app: true,
        transport_net: true,
        transport_app_net: true,
    };

    /// Eq. 4 only — the TGA-adjacent ablation.
    pub const TRANSPORT_ONLY: Interactions = Interactions {
        transport: true,
        transport_app: false,
        transport_net: false,
        transport_app_net: false,
    };

    pub fn any(&self) -> bool {
        self.transport || self.transport_app || self.transport_net || self.transport_app_net
    }
}

/// The §5.4 discard threshold for "most predictive feature" probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MinProb {
    /// A fixed threshold (the paper uses 1e-5 ≈ the random-probe hit rate of
    /// most ports on the real Internet).
    Fixed(f64),
    /// Derive the threshold from the seed scan: the median per-port hit rate
    /// of random probing in the observed universe. Scale-free, so it works
    /// for simulated universes much smaller than 3.7B addresses.
    Auto,
}

/// Full GPS configuration.
#[derive(Debug, Clone)]
pub struct GpsConfig {
    /// Seed-scan size as a fraction of the address space (§5.1; the paper
    /// evaluates 0.1%–2%).
    pub seed_fraction: f64,
    /// Scanning step size: prefix length of the subnet exhaustively scanned
    /// around each prior (§5.3; Figure 5 sweeps /0../20).
    pub step_prefix: u8,
    /// Threshold below which feature→port rules are discarded (§5.4).
    pub min_prob: MinProb,
    /// Which conditional-probability classes to model.
    pub interactions: Interactions,
    /// Network-layer features (Appendix C).
    pub net_features: Vec<NetFeature>,
    /// Compute backend for the model build (single core vs parallel — the
    /// §6.5 comparison).
    pub backend: Backend,
    /// Bandwidth constraint `c1` (Equation 3) in units of 100% scans;
    /// `None` = unconstrained.
    pub budget_scans: Option<f64>,
    /// Hard cap on emitted predictions (memory guard for huge runs).
    pub max_predictions: usize,
    /// Approximate number of checkpoints recorded on discovery curves.
    pub curve_points: usize,
    /// After predictions are exhausted, keep randomly probing un-probed
    /// space (§6.3's optional tail). Modeled analytically; off by default.
    pub residual_random: bool,
}

impl Default for GpsConfig {
    fn default() -> Self {
        GpsConfig {
            seed_fraction: 0.01,
            step_prefix: 16,
            min_prob: MinProb::Auto,
            interactions: Interactions::ALL,
            net_features: vec![NetFeature::Slash(16), NetFeature::Asn],
            backend: Backend::parallel(),
            budget_scans: None,
            max_predictions: 20_000_000,
            curve_points: 256,
            residual_random: false,
        }
    }
}

impl GpsConfig {
    pub fn validate(&self) -> Result<(), GpsError> {
        if !(0.0 < self.seed_fraction && self.seed_fraction <= 1.0) {
            return Err(GpsError::config("seed_fraction", "must be in (0, 1]"));
        }
        if self.step_prefix > 32 {
            return Err(GpsError::config("step_prefix", "must be 0..=32"));
        }
        if let MinProb::Fixed(p) = self.min_prob {
            if !(0.0..=1.0).contains(&p) {
                return Err(GpsError::config("min_prob", "must be in [0, 1]"));
            }
        }
        if !self.interactions.any() {
            return Err(GpsError::config(
                "interactions",
                "at least one class required",
            ));
        }
        if self.curve_points == 0 {
            return Err(GpsError::config("curve_points", "must be > 0"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        GpsConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_values() {
        let mut c = GpsConfig {
            seed_fraction: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = GpsConfig {
            step_prefix: 33,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = GpsConfig {
            min_prob: MinProb::Fixed(1.5),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = GpsConfig {
            interactions: Interactions {
                transport: false,
                transport_app: false,
                transport_net: false,
                transport_app_net: false,
            },
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn interaction_presets() {
        let (all, transport_only) = (Interactions::ALL, Interactions::TRANSPORT_ONLY);
        assert!(all.any());
        assert!(transport_only.any());
        assert!(!transport_only.transport_app);
    }

    #[test]
    fn net_feature_labels() {
        assert_eq!(NetFeature::Slash(16).label(), "/16");
        assert_eq!(NetFeature::Asn.label(), "ASN");
    }
}
