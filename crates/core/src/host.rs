//! Host-grouped scan records and model-key extraction.
//!
//! The conditional-probability model (Eq. 4–7) is computed over *hosts*: a
//! host exhibiting a feature tuple is one denominator count, and each of its
//! other open ports is one numerator count. [`HostRecord`] groups a scan's
//! observations per IP; [`service_keys`] enumerates the model keys a single
//! service gives rise to.

use std::collections::HashMap;

use gps_scan::ServiceObservation;
use gps_types::{Ip, Port, Subnet};

use crate::config::NetFeature;
use crate::model::{CondKey, NetKey};

/// One scanned host: its IP, derived network keys, and observed services.
#[derive(Debug, Clone)]
pub struct HostRecord {
    pub ip: Ip,
    /// Network keys of the host under the configured [`NetFeature`]s.
    pub nets: Vec<NetKey>,
    /// Observations sorted by port (one per port).
    pub services: Vec<ServiceObservation>,
}

impl HostRecord {
    pub fn open_ports(&self) -> impl Iterator<Item = Port> + '_ {
        self.services.iter().map(|s| s.port)
    }
}

/// Derive the [`NetKey`]s of an address. ASN resolution is supplied by the
/// caller (the scanner/topology layer owns that mapping).
pub fn net_keys_for(
    ip: Ip,
    net_features: &[NetFeature],
    asn_of: &dyn Fn(Ip) -> Option<u32>,
) -> Vec<NetKey> {
    net_features
        .iter()
        .filter_map(|nf| match nf {
            NetFeature::Slash(prefix) => {
                Some(NetKey::Slash(*prefix, Subnet::of_ip(ip, *prefix).base().0))
            }
            NetFeature::Asn => asn_of(ip).map(NetKey::Asn),
        })
        .collect()
}

/// Group observations by host, deduplicating (ip, port) pairs and sorting
/// services by port. Output is sorted by IP (deterministic model input).
pub fn group_by_host(
    observations: &[ServiceObservation],
    net_features: &[NetFeature],
    asn_of: &dyn Fn(Ip) -> Option<u32>,
) -> Vec<HostRecord> {
    let mut by_ip: HashMap<u32, Vec<ServiceObservation>> = HashMap::new();
    let mut seen = std::collections::HashSet::new();
    for obs in observations {
        if seen.insert((obs.ip.0, obs.port.0)) {
            by_ip.entry(obs.ip.0).or_default().push(obs.clone());
        }
    }
    let mut hosts: Vec<HostRecord> = by_ip
        .into_iter()
        .map(|(ip, mut services)| {
            services.sort_by_key(|s| s.port);
            let ip = Ip(ip);
            HostRecord {
                ip,
                nets: net_keys_for(ip, net_features, asn_of),
                services,
            }
        })
        .collect();
    hosts.sort_by_key(|h| h.ip);
    hosts
}

/// Enumerate every model key (Eq. 4–7 conditioning tuples) derivable from
/// one observed service on a host with the given network keys.
///
/// - Eq. 4: `(Port_b)`
/// - Eq. 5: `(Port_b, App_b)` for each application feature of the service
/// - Eq. 6: `(Port_b, Net)` for each network key
/// - Eq. 7: `(Port_b, App_b, Net)` for each feature × network key
pub fn service_keys(
    service: &ServiceObservation,
    nets: &[NetKey],
    interactions: crate::config::Interactions,
    sink: &mut dyn FnMut(CondKey),
) {
    let port = service.port;
    if interactions.transport {
        sink(CondKey::Port(port));
    }
    if interactions.transport_app {
        for f in &service.features {
            sink(CondKey::PortApp(port, *f));
        }
    }
    if interactions.transport_net {
        for net in nets {
            sink(CondKey::PortNet(port, *net));
        }
    }
    if interactions.transport_app_net {
        for f in &service.features {
            for net in nets {
                sink(CondKey::PortAppNet(port, *f, *net));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Interactions;
    use gps_types::{FeatureKind, FeatureValue, Protocol, Sym};

    fn obs(ip: u32, port: u16, nfeatures: usize) -> ServiceObservation {
        ServiceObservation {
            ip: Ip(ip),
            port: Port(port),
            ttl: 60,
            protocol: Protocol::Http,
            content: Sym(0),
            features: (0..nfeatures)
                .map(|i| FeatureValue::new(FeatureKind::HttpServer, Sym(i as u32)))
                .collect(),
        }
    }

    #[test]
    fn grouping_sorts_and_dedups() {
        let observations = vec![obs(2, 443, 0), obs(1, 80, 0), obs(2, 80, 0), obs(2, 80, 0)];
        let hosts = group_by_host(&observations, &[NetFeature::Slash(16)], &|_| None);
        assert_eq!(hosts.len(), 2);
        assert_eq!(hosts[0].ip, Ip(1));
        assert_eq!(hosts[1].services.len(), 2);
        assert_eq!(hosts[1].services[0].port, Port(80));
        assert_eq!(hosts[1].services[1].port, Port(443));
    }

    #[test]
    fn net_keys_cover_features() {
        let ip = Ip::from_octets(10, 20, 30, 40);
        let keys = net_keys_for(ip, &[NetFeature::Slash(16), NetFeature::Asn], &|_| Some(7));
        assert_eq!(keys.len(), 2);
        assert!(
            matches!(keys[0], NetKey::Slash(16, base) if base == Ip::from_octets(10, 20, 0, 0).0)
        );
        assert!(matches!(keys[1], NetKey::Asn(7)));
        // Unknown ASN yields no ASN key.
        let keys = net_keys_for(ip, &[NetFeature::Asn], &|_| None);
        assert!(keys.is_empty());
    }

    #[test]
    fn key_count_formula() {
        // k features, n nets ⇒ 1 + k + n + k·n keys with all interactions.
        let service = obs(1, 80, 3);
        let nets = vec![NetKey::Slash(16, 0), NetKey::Asn(9)];
        let mut keys = Vec::new();
        service_keys(&service, &nets, Interactions::ALL, &mut |k| keys.push(k));
        assert_eq!(keys.len(), 1 + 3 + 2 + 6);
        // All keys distinct.
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn interaction_gating() {
        let service = obs(1, 80, 2);
        let nets = vec![NetKey::Asn(1)];
        let mut keys = Vec::new();
        service_keys(&service, &nets, Interactions::TRANSPORT_ONLY, &mut |k| {
            keys.push(k)
        });
        assert_eq!(keys, vec![CondKey::Port(Port(80))]);
    }

    #[test]
    fn unknown_protocol_has_only_port_and_net_keys() {
        let mut service = obs(1, 5432, 0);
        service.protocol = Protocol::Unknown;
        let nets = vec![NetKey::Slash(16, 0)];
        let mut keys = Vec::new();
        service_keys(&service, &nets, Interactions::ALL, &mut |k| keys.push(k));
        assert_eq!(keys.len(), 2, "Port + PortNet only: {keys:?}");
    }
}
