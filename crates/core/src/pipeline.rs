//! The four-phase GPS pipeline (§5): seed scan → probabilistic model →
//! priors scan → prediction scan, under the Equation 3 bandwidth constraint.
//!
//! [`run_gps`] drives the whole system against a [`Dataset`] and returns a
//! [`GpsRun`] holding the discovery curve, the trained artifacts (model
//! stats, priors list, feature rules), the bandwidth ledger, and phase
//! timings — everything the experiment harness needs to regenerate the
//! paper's figures.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use gps_engine::ExecLedger;
use gps_scan::{BandwidthLedger, RateModel, ScanConfig, ScanPhase, Scanner, ServiceObservation};
use gps_synthnet::Internet;
use gps_types::{Ip, PortSet, ServiceKey};

use crate::config::{GpsConfig, MinProb};
use crate::dataset::Dataset;
use crate::filter::{filter_pseudo_services, FilterStats};
use crate::host::{group_by_host, HostRecord};
use crate::metrics::{CoverageTracker, DiscoveryCurve};
use crate::model::{BuildStats, CondModel};
use crate::predict::{build_predictions_compiled, FeatureRules, Prediction};
use crate::priors::{build_priors_list, PriorsEntry};

/// Wall-clock components of a run. Scan times are simulated via the
/// [`RateModel`]; compute times are measured.
#[derive(Debug, Clone)]
pub struct PhaseTimings {
    pub seed_scan: Duration,
    pub model_build: Duration,
    pub priors_build: Duration,
    pub priors_scan: Duration,
    pub rules_build: Duration,
    pub predict_scan: Duration,
}

impl PhaseTimings {
    /// Total measured computation (the "13 minutes" / "9 days" axis of
    /// Table 2, depending on backend).
    pub fn compute_total(&self) -> Duration {
        self.model_build + self.priors_build + self.rules_build
    }

    /// Total simulated scanning wall-clock.
    pub fn scan_total(&self) -> Duration {
        self.seed_scan + self.priors_scan + self.predict_scan
    }
}

/// Everything produced by one GPS run.
#[derive(Debug)]
pub struct GpsRun {
    pub dataset_name: String,
    /// Coverage/bandwidth/precision curve (checkpointed during discovery).
    pub curve: DiscoveryCurve,
    /// Test-set services discovered.
    pub found: HashSet<ServiceKey>,
    pub ledger: BandwidthLedger,
    pub universe_size: u64,
    /// Raw/filtered seed observation counts.
    pub seed_observations_raw: usize,
    pub seed_observations: usize,
    pub seed_hosts: usize,
    pub filter_stats: FilterStats,
    pub model_stats: BuildStats,
    /// Engine accounting for the model build (Table 2's data-processed
    /// column).
    pub engine_ledger: ExecLedger,
    /// Full priors list (entries actually scanned: `priors_scanned`).
    pub priors_list: Vec<PriorsEntry>,
    pub priors_scanned: usize,
    /// Responsive services found by the priors scan.
    pub priors_services: usize,
    pub rules: FeatureRules,
    /// The trained conditional-probability model (kept for downstream
    /// analyses: Figure 4 attribution, Tables 3–4, §6.6).
    pub model: CondModel,
    /// Host-grouped, filtered seed records the model was trained on.
    pub seed_host_records: Vec<HostRecord>,
    /// Predictions emitted / actually scanned.
    pub predictions_total: usize,
    pub predictions_scanned: usize,
    /// Prediction probes spent per target port (Figure 4b's GPS bars).
    pub predictions_per_port: std::collections::HashMap<u16, u64>,
    pub min_prob_used: f64,
    pub timings: PhaseTimings,
    /// True if the Equation 3 budget stopped a phase early.
    pub truncated_by_budget: bool,
}

impl GpsRun {
    /// Eq. 1 at end of run.
    pub fn fraction_of_services(&self) -> f64 {
        self.curve.last().fraction_all
    }

    /// Eq. 2 at end of run.
    pub fn fraction_normalized(&self) -> f64 {
        self.curve.last().fraction_normalized
    }

    /// Total bandwidth in 100%-scan units.
    pub fn total_scans(&self) -> f64 {
        self.ledger.full_scans(self.universe_size)
    }
}

/// Run GPS end to end on a dataset.
pub fn run_gps(net: &Internet, dataset: &Dataset, config: &GpsConfig) -> GpsRun {
    config.validate().expect("invalid GPS config");
    let universe = net.universe_size();
    let budget_probes = config
        .budget_scans
        .map(|scans| (scans * universe as f64) as u64)
        .unwrap_or(u64::MAX);

    let mut scanner = Scanner::new(
        net,
        ScanConfig {
            day: dataset.day,
            ip_filter: dataset.visible_ips.clone(),
            port_filter: dataset.ports.clone(),
            ..Default::default()
        },
    );
    let rate_model = RateModel::default();
    let asn_of = |ip: Ip| net.asn_of(ip).map(|a| a.0);

    // ---------------------------------------------------- phase 1: seed scan
    // "All ports" means the simulated port space (the paper's 65,536 ports
    // scale down with the universe; DESIGN.md §1).
    let ports: PortSet = match &dataset.ports {
        Some(p) => (**p).clone(),
        None => net.all_ports(),
    };
    let seed_ips: Vec<Ip> = {
        let mut v: Vec<u32> = dataset.seed_ips.iter().copied().collect();
        v.sort_unstable();
        v.into_iter().map(Ip).collect()
    };
    let raw_seed = scanner.scan_ip_set(ScanPhase::Seed, seed_ips.iter().copied(), &ports);
    let seed_scan_time =
        rate_model.scan_time(ScanPhase::Seed, scanner.ledger().bytes(ScanPhase::Seed));

    // Appendix B filter, then the dataset's ports-with->N-IPs filter.
    let seed_observations_raw = raw_seed.len();
    let (filtered, filter_stats) = filter_pseudo_services(raw_seed);
    let filtered = apply_seed_port_threshold(filtered, dataset.min_ips_per_port);
    let seed_observations = filtered.len();

    let seed_hosts = group_by_host(&filtered, &config.net_features, &asn_of);
    let min_prob_used = resolve_min_prob(config.min_prob, &filtered, dataset.seed_size());

    // ----------------------------------------------------- phase 2: model
    let engine_ledger = ExecLedger::new();
    let t0 = Instant::now();
    let (model, model_stats) = CondModel::build(
        &seed_hosts,
        config.interactions,
        config.backend,
        &engine_ledger,
    );
    let model_build = t0.elapsed();

    // ------------------------------------------------ phase 3: priors scan
    let t0 = Instant::now();
    let priors_list = build_priors_list(&model, &seed_hosts, config.step_prefix);
    let priors_build = t0.elapsed();

    let mut tracker = CoverageTracker::new(&dataset.test);
    let mut curve = DiscoveryCurve::default();
    curve.push(tracker.snapshot(scanner.ledger().full_scans(universe)));

    let mut known: HashSet<(u32, u16)> = filtered.iter().map(|o| (o.ip.0, o.port.0)).collect();
    let mut prior_observations: Vec<ServiceObservation> = Vec::new();
    let mut truncated = false;
    let mut priors_scanned = 0usize;

    let stride = (priors_list.len() / (config.curve_points / 2).max(1)).max(1);
    for (i, entry) in priors_list.iter().enumerate() {
        // Estimate the SYN sweep; the LZR/ZGrab chain adds ~2 probes per
        // responsive service on top, so also stop once the ledger crosses
        // the budget (overshoot is bounded by one tuple's responses).
        let cost = scanner.allocated_size_within(entry.subnet);
        if scanner.ledger().total_probes().saturating_add(cost) > budget_probes {
            truncated = true;
            break;
        }
        let before = scanner.ledger().total_probes();
        let observations = scanner.scan_subnet_port(ScanPhase::Priors, entry.subnet, entry.port);
        tracker.charge_probes(scanner.ledger().total_probes() - before);
        for obs in observations {
            tracker.record(obs.key());
            if known.insert((obs.ip.0, obs.port.0)) {
                prior_observations.push(obs);
            }
        }
        priors_scanned = i + 1;
        if i % stride == 0 {
            curve.push(tracker.snapshot(scanner.ledger().full_scans(universe)));
        }
    }
    curve.push(tracker.snapshot(scanner.ledger().full_scans(universe)));
    let priors_scan_time =
        rate_model.scan_time(ScanPhase::Priors, scanner.ledger().bytes(ScanPhase::Priors));

    // -------------------------------------------- phase 4: prediction scan
    let t0 = Instant::now();
    let rules = FeatureRules::build(&model, &seed_hosts, min_prob_used);
    // Matching runs over the compiled arena form — the same kernel the
    // serving layer queries, so offline and online answers share one code
    // path (and its bit-identical parity guarantees).
    let compiled_rules = crate::compiled::CompiledRules::from_rules(&rules);
    let prior_hosts: Vec<HostRecord> =
        group_by_host(&prior_observations, &config.net_features, &asn_of);
    let predictions: Vec<Prediction> = build_predictions_compiled(
        &compiled_rules,
        &prior_hosts,
        &known,
        config.max_predictions,
    );
    let rules_build = t0.elapsed();

    let predictions_total = predictions.len();
    let mut predictions_scanned = 0usize;
    let mut predictions_per_port: HashMap<u16, u64> = HashMap::new();
    let chunk_size = (predictions.len() / (config.curve_points / 2).max(1)).max(256);
    for chunk in predictions.chunks(chunk_size) {
        let cost = chunk.len() as u64;
        if scanner.ledger().total_probes().saturating_add(cost) > budget_probes {
            truncated = true;
            break;
        }
        for p in chunk {
            *predictions_per_port.entry(p.port.0).or_default() += 1;
        }
        let before = scanner.ledger().total_probes();
        let found = scanner.scan_targets(ScanPhase::Predict, chunk.iter().map(|p| (p.ip, p.port)));
        tracker.charge_probes(scanner.ledger().total_probes() - before);
        for obs in found {
            tracker.record(obs.key());
            known.insert((obs.ip.0, obs.port.0));
        }
        predictions_scanned += chunk.len();
        curve.push(tracker.snapshot(scanner.ledger().full_scans(universe)));
    }
    let predict_scan_time = rate_model.scan_time(
        ScanPhase::Predict,
        scanner.ledger().bytes(ScanPhase::Predict),
    );

    // ------------------------------------- optional §6.3 residual probing
    if config.residual_random && !truncated {
        residual_random_phase(
            &mut tracker,
            &mut curve,
            dataset,
            universe,
            net.port_space() as u64,
            scanner.ledger(),
            budget_probes,
        );
    }

    GpsRun {
        dataset_name: dataset.name.clone(),
        curve,
        found: tracker.found().clone(),
        ledger: scanner.ledger().clone(),
        universe_size: universe,
        seed_observations_raw,
        seed_observations,
        seed_hosts: seed_hosts.len(),
        filter_stats,
        model_stats,
        engine_ledger,
        priors_list,
        priors_scanned,
        priors_services: prior_observations.len(),
        rules,
        model,
        seed_host_records: seed_hosts,
        predictions_total,
        predictions_scanned,
        predictions_per_port,
        min_prob_used,
        timings: PhaseTimings {
            seed_scan: seed_scan_time,
            model_build,
            priors_build,
            priors_scan: priors_scan_time,
            rules_build,
            predict_scan: predict_scan_time,
        },
        truncated_by_budget: truncated,
    }
}

/// Drop seed observations on ports with ≤ `min_ips` responsive seed IPs
/// (the LZR evaluation's port filter, applied to the seed side).
fn apply_seed_port_threshold(
    observations: Vec<ServiceObservation>,
    min_ips: u64,
) -> Vec<ServiceObservation> {
    if min_ips == 0 {
        return observations;
    }
    let mut per_port: HashMap<u16, u64> = HashMap::new();
    for o in &observations {
        *per_port.entry(o.port.0).or_default() += 1;
    }
    observations
        .into_iter()
        .filter(|o| per_port[&o.port.0] > min_ips)
        .collect()
}

/// §5.4: the discard threshold should sit at the hit rate of random probing.
/// `Auto` estimates it as (median per-port responsive IPs in the seed) ÷
/// (seed addresses).
fn resolve_min_prob(
    min_prob: MinProb,
    seed_observations: &[ServiceObservation],
    seed_size: u64,
) -> f64 {
    match min_prob {
        MinProb::Fixed(p) => p,
        MinProb::Auto => {
            let mut per_port: HashMap<u16, u64> = HashMap::new();
            for o in seed_observations {
                *per_port.entry(o.port.0).or_default() += 1;
            }
            if per_port.is_empty() || seed_size == 0 {
                return 1e-5;
            }
            let mut counts: Vec<u64> = per_port.values().copied().collect();
            counts.sort_unstable();
            let median = counts[counts.len() / 2];
            (median as f64 / seed_size as f64).max(1e-9)
        }
    }
}

/// Analytic §6.3 tail: after predictions are exhausted, GPS can randomly
/// probe the remaining space; expected discovery is uniform over un-probed
/// (ip, port) pairs. We synthesize checkpoints instead of enumerating
/// billions of residual probes.
fn residual_random_phase(
    tracker: &mut CoverageTracker<'_>,
    curve: &mut DiscoveryCurve,
    dataset: &Dataset,
    universe: u64,
    port_space: u64,
    ledger: &BandwidthLedger,
    budget_probes: u64,
) {
    let visible_ips = dataset
        .visible_ips
        .as_ref()
        .map(|v| v.len() as u64)
        .unwrap_or(universe);
    let num_ports = dataset
        .ports
        .as_ref()
        .map(|p| p.len() as u64)
        .unwrap_or(port_space);
    let total_pairs = visible_ips.saturating_mul(num_ports);
    let remaining = dataset.test.total().saturating_sub(tracker.found_count()) as f64;
    if remaining <= 0.0 || total_pairs == 0 {
        return;
    }
    let base_probes = ledger.total_probes();
    let available = budget_probes
        .saturating_sub(base_probes)
        .min(total_pairs * 4);
    let steps = 24u64;
    for i in 1..=steps {
        let extra = available / steps * i;
        let frac_probed = (extra as f64 / total_pairs as f64).min(1.0);
        let expect_found = remaining * frac_probed;
        // Synthetic point: bump the snapshot without touching found-set
        // bookkeeping (these services are *expected*, not identified).
        let mut point = tracker.snapshot((base_probes + extra) as f64 / universe as f64);
        point.fraction_all += expect_found / dataset.test.total().max(1) as f64;
        point.fraction_normalized += expect_found / dataset.test.total().max(1) as f64;
        point.discovery_probes += extra;
        point.precision = (point.found as f64 + expect_found) / point.discovery_probes as f64;
        curve.push(point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{censys_dataset, lzr_dataset};
    use gps_synthnet::UniverseConfig;

    fn net() -> Internet {
        Internet::generate(&UniverseConfig::tiny(77))
    }

    fn quick_config() -> GpsConfig {
        GpsConfig {
            seed_fraction: 0.05,
            step_prefix: 20,
            curve_points: 32,
            ..Default::default()
        }
    }

    #[test]
    fn censys_run_finds_most_services() {
        let net = net();
        let ds = censys_dataset(&net, 200, 0.05, 0, 1);
        let run = run_gps(&net, &ds, &quick_config());
        assert!(
            run.seed_observations > 100,
            "seed too small: {}",
            run.seed_observations
        );
        assert!(run.model_stats.distinct_keys > 100);
        assert!(run.priors_scanned > 0);
        assert!(run.predictions_total > 0);
        let frac = run.fraction_of_services();
        assert!(frac > 0.5, "GPS should find most services, got {frac}");
        // Curve is monotone in bandwidth and coverage.
        let pts = &run.curve.points;
        assert!(pts.windows(2).all(|w| w[0].scans <= w[1].scans));
        assert!(pts
            .windows(2)
            .all(|w| w[0].fraction_all <= w[1].fraction_all));
    }

    #[test]
    fn found_services_are_real_test_services() {
        let net = net();
        let ds = censys_dataset(&net, 200, 0.05, 0, 1);
        let run = run_gps(&net, &ds, &quick_config());
        for key in run.found.iter().take(300) {
            assert!(ds.in_test(key));
            assert!(net.service(key.ip, key.port, 0).is_some());
        }
    }

    #[test]
    fn budget_truncates_run() {
        let net = net();
        let ds = censys_dataset(&net, 200, 0.05, 0, 1);
        let unbounded = run_gps(&net, &ds, &quick_config());
        let total = unbounded.total_scans();
        let seed = unbounded
            .ledger
            .full_scans_phase(ScanPhase::Seed, net.universe_size());
        assert!(total > seed, "discovery phases must cost something");
        // A budget halfway between the sunk seed cost and the full run must
        // cut discovery short.
        let budget = seed + (total - seed) * 0.5;
        let config = GpsConfig {
            budget_scans: Some(budget),
            ..quick_config()
        };
        let bounded = run_gps(&net, &ds, &config);
        assert!(bounded.truncated_by_budget);
        // The budget gate pre-checks each work unit's SYN sweep; the
        // response chain (LZR+ZGrab ≈ 2 probes per responsive service) can
        // overshoot by a hair.
        assert!(
            bounded.total_scans() <= budget * 1.05 + 0.05,
            "{} vs budget {budget}",
            bounded.total_scans()
        );
        assert!(bounded.fraction_of_services() <= unbounded.fraction_of_services());
    }

    #[test]
    fn lzr_run_works_on_all_ports() {
        let net = net();
        let ds = lzr_dataset(&net, 0.3, 0.5, 2, 0, 2);
        let config = GpsConfig {
            seed_fraction: 0.15,
            ..quick_config()
        };
        let run = run_gps(&net, &ds, &config);
        assert!(
            run.fraction_of_services() > 0.3,
            "got {}",
            run.fraction_of_services()
        );
        // Normalized is harder than raw coverage on all-port datasets.
        assert!(run.fraction_normalized() <= run.fraction_of_services() + 0.1);
    }

    #[test]
    fn deterministic_runs() {
        let net = net();
        let ds = censys_dataset(&net, 100, 0.05, 0, 9);
        let a = run_gps(&net, &ds, &quick_config());
        let b = run_gps(&net, &ds, &quick_config());
        assert_eq!(a.found, b.found);
        assert_eq!(a.predictions_total, b.predictions_total);
        assert_eq!(a.ledger.total_probes(), b.ledger.total_probes());
    }

    #[test]
    fn backends_agree_end_to_end() {
        let net = net();
        let ds = censys_dataset(&net, 100, 0.05, 0, 9);
        let single = run_gps(
            &net,
            &ds,
            &GpsConfig {
                backend: gps_engine::Backend::SingleCore,
                ..quick_config()
            },
        );
        let parallel = run_gps(
            &net,
            &ds,
            &GpsConfig {
                backend: gps_engine::Backend::parallel(),
                ..quick_config()
            },
        );
        assert_eq!(single.found, parallel.found);
        assert_eq!(single.predictions_total, parallel.predictions_total);
    }

    #[test]
    fn smaller_step_uses_less_priors_bandwidth() {
        let net = net();
        let ds = censys_dataset(&net, 100, 0.05, 0, 9);
        let big = run_gps(
            &net,
            &ds,
            &GpsConfig {
                step_prefix: 16,
                ..quick_config()
            },
        );
        let small = run_gps(
            &net,
            &ds,
            &GpsConfig {
                step_prefix: 24,
                ..quick_config()
            },
        );
        assert!(
            small.ledger.probes(ScanPhase::Priors) < big.ledger.probes(ScanPhase::Priors),
            "/24 priors must cost less than /16"
        );
    }

    #[test]
    fn min_prob_resolution() {
        use gps_types::{Port, Protocol, Sym};
        let mk = |ip: u32, port: u16| ServiceObservation {
            ip: Ip(ip),
            port: Port(port),
            ttl: 64,
            protocol: Protocol::Http,
            content: Sym(0),
            features: vec![],
        };
        // Ports with 1, 3, 5 responsive IPs → median 3.
        let mut observations = vec![mk(1, 10)];
        for ip in 1..=3 {
            observations.push(mk(ip, 20));
        }
        for ip in 1..=5 {
            observations.push(mk(ip, 30));
        }
        let p = resolve_min_prob(MinProb::Auto, &observations, 1000);
        assert!((p - 3.0 / 1000.0).abs() < 1e-12);
        assert_eq!(
            resolve_min_prob(MinProb::Fixed(0.5), &observations, 1000),
            0.5
        );
        assert_eq!(resolve_min_prob(MinProb::Auto, &[], 1000), 1e-5);
    }
}
