//! Persistent model artifacts.
//!
//! Everything `run_gps` trains — the conditional-probability model (Eq.
//! 4–7), the "most predictive feature values" rules list (§5.4), and the
//! priors scan list (§5.3) — can be saved to a single versioned snapshot
//! file and reloaded later by the serving subsystem (`gps-serve`) without
//! re-running the pipeline. This is what turns the repo from a one-shot
//! batch reproduction into a servable system: train once with
//! `gps export-model`, answer prediction queries for as long as the model
//! stays fresh with `gps serve`.
//!
//! ## Formats
//!
//! Two interchangeable on-disk encodings carry the same snapshot;
//! [`load`](ModelSnapshot::load) auto-detects by the leading bytes.
//!
//! **JSON** (see `gps_types::json` for why JSON and not serde):
//!
//! ```text
//! {"manifest": {format, universe_seed, dataset, config, stats, checksum},
//!  "body": {"model": ..., "rules": ..., "priors": ...}}
//! ```
//!
//! The manifest's `checksum` field is FNV-1a over the canonical
//! serialization of the manifest (checksum zeroed) followed by the
//! canonical serialization of `body`; `load` re-serializes the parsed
//! document (the writer is deterministic, so this is byte-identical to
//! what `save` hashed) and rejects mismatches — corrupting manifest
//! fields that drive serving (step_prefix, net_features) fails the same
//! check as body corruption. Version checks are split by field:
//! a different `format` major is rejected, a newer minor is accepted
//! (minor bumps may only add fields, which the parser ignores).
//!
//! **GPSB binary** (`gps_types::binary`): JSON parsing dominates load
//! time on big universes — every probability goes through float
//! formatting and re-tokenization — so
//! [`save_binary`](ModelSnapshot::save_binary) writes the same data as
//! length-prefixed, per-section-checksummed little-endian sections:
//!
//! ```text
//! "GPSB" | container version (u8)
//! MANI section: the manifest as JSON text  (forward-compatible header)
//! MODL section: co-occurrence model        (varint counts, binary keys)
//! RULE section: feature rules              (f64 bit patterns, exact)
//! PRIO section: priors scan list
//! ```
//!
//! Each section is `tag | u32 length | payload | u64 FNV-1a of payload`,
//! so corruption is pinned to a section and `load_serving` can *skip*
//! the MODL payload (hash-verify only, never parse — the bulk of the
//! file) while still checking the integrity of every byte. The manifest
//! stays JSON inside its section: new manifest fields from newer minor
//! versions ride through without a binary schema change, and the
//! manifest `checksum` field keeps its JSON-body definition in both
//! formats, so a snapshot converted binary→JSON is byte-identical to one
//! saved as JSON directly. Probabilities are stored as IEEE-754 bit
//! patterns, so a binary round trip is bit-exact by construction.
//!
//! Interned symbols (`Sym`) are stored as raw `u32`s: they are only
//! meaningful together with the universe that produced them, which is
//! itself a pure function of the recorded `universe_seed`.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use gps_types::binary::{
    read_section, write_section, ByteReader, ByteWriter, GPSB_CONTAINER_VERSION, GPSB_MAGIC,
};
use gps_types::json::{fnv64, u64_from_hex, u64_to_hex, Json};
use gps_types::{FeatureKind, FeatureValue, GpsError, Port, Subnet, Sym};

use crate::config::{GpsConfig, Interactions, NetFeature};
use crate::model::{CondKey, CondModel, KeyStats, NetKey};
use crate::pipeline::GpsRun;
use crate::predict::FeatureRules;
use crate::priors::PriorsEntry;

/// Snapshot format version. Major changes break compatibility; minor
/// changes only add fields.
pub const FORMAT_MAJOR: u32 = 1;
pub const FORMAT_MINOR: u32 = 0;

/// GPSB section tags. MANI must come first (it gates version checks);
/// unknown tags from newer minor versions are skipped after their
/// checksum verifies.
const SEC_MANIFEST: [u8; 4] = *b"MANI";
const SEC_MODEL: [u8; 4] = *b"MODL";
const SEC_RULES: [u8; 4] = *b"RULE";
const SEC_PRIORS: [u8; 4] = *b"PRIO";
/// Compiled struct-of-arrays form of RULE + PRIO (see [`crate::compiled`]):
/// derived data, loadable with a few validated bulk reads. Optional — a
/// container without it compiles at load time — and excluded from the
/// manifest checksum (which keeps its JSON definition), so binary → JSON
/// conversion stays byte-identical.
const SEC_COMPILED: [u8; 4] = *b"CMPL";

/// Net-key discriminants inside binary conditioning keys.
const NETKEY_SLASH: u8 = 0;
const NETKEY_ASN: u8 = 1;

/// Descriptive header of a snapshot: enough to decide whether to trust and
/// how to query the artifact without deserializing the body.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelManifest {
    pub format: (u32, u32),
    /// Seed of the synthetic universe the model was trained against.
    pub universe_seed: u64,
    pub dataset_name: String,
    /// §5.3 scanning step: the prefix length priors entries are keyed on.
    /// The serving layer maps query IPs to subnets of this length.
    pub step_prefix: u8,
    /// The resolved §5.4 discard threshold used at training time.
    pub min_prob: f64,
    pub interactions: Interactions,
    pub net_features: Vec<NetFeature>,
    /// Training-set size (model build input).
    pub hosts_in: usize,
    pub distinct_keys: usize,
    pub cooccur_entries: u64,
    pub num_rules: usize,
    pub num_priors: usize,
    /// FNV-1a over the canonical manifest (this field zeroed) + body
    /// serializations.
    pub checksum: u64,
}

/// A trained, persistable GPS model: manifest + the three artifacts.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    pub manifest: ModelManifest,
    pub model: CondModel,
    pub rules: FeatureRules,
    pub priors: Vec<PriorsEntry>,
    /// The compiled struct-of-arrays form of `rules` + `priors`, present
    /// when this snapshot was loaded from a GPSB container with a `CMPL`
    /// section. Derived data: serializers always recompile from the
    /// authoritative fields, and loaders without it compile on demand.
    pub compiled: Option<crate::compiled::CompiledModel>,
}

/// Errors from snapshot persistence.
#[derive(Debug)]
pub enum SnapshotError {
    Io(std::io::Error),
    Malformed(GpsError),
    /// The file's major version is not this build's major version.
    Version {
        found: (u32, u32),
        supported: (u32, u32),
    },
    Checksum {
        expected: u64,
        computed: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Malformed(e) => write!(f, "malformed snapshot: {e}"),
            SnapshotError::Version { found, supported } => write!(
                f,
                "unsupported snapshot format {}.{} (this build supports {}.x)",
                found.0, found.1, supported.0
            ),
            SnapshotError::Checksum { expected, computed } => write!(
                f,
                "snapshot checksum mismatch: manifest says {expected:016x}, body hashes to {computed:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<GpsError> for SnapshotError {
    fn from(e: GpsError) -> Self {
        SnapshotError::Malformed(e)
    }
}

impl ModelSnapshot {
    /// Package the artifacts of a finished [`GpsRun`] for persistence.
    pub fn from_run(run: &GpsRun, config: &GpsConfig, universe_seed: u64) -> ModelSnapshot {
        let mut snapshot = ModelSnapshot {
            manifest: ModelManifest {
                format: (FORMAT_MAJOR, FORMAT_MINOR),
                universe_seed,
                dataset_name: run.dataset_name.clone(),
                step_prefix: config.step_prefix,
                min_prob: run.min_prob_used,
                interactions: config.interactions,
                net_features: config.net_features.clone(),
                hosts_in: run.model_stats.hosts_in,
                distinct_keys: run.model_stats.distinct_keys,
                cooccur_entries: run.model_stats.cooccur_entries,
                num_rules: run.rules.len(),
                num_priors: run.priors_list.len(),
                checksum: 0,
            },
            model: run.model.clone(),
            rules: run.rules.clone(),
            priors: run.priors_list.clone(),
            compiled: None,
        };
        snapshot.manifest.checksum = checksum_of(&snapshot.manifest, &snapshot.body_text());
        snapshot
    }

    /// Serialize the snapshot to its on-disk JSON text.
    pub fn to_json_string(&self) -> String {
        // The body is serialized exactly once and spliced in, so the bytes
        // the checksum covers are the bytes written. The checksum is always
        // recomputed here: the fields are public, so the snapshot may have
        // been edited since construction and a stored stale checksum would
        // produce a file that can never be loaded.
        let body = self.body_text();
        let manifest = manifest_to_json(&ModelManifest {
            checksum: checksum_of(&self.manifest, &body),
            ..self.manifest.clone()
        });
        let mut manifest_text = String::new();
        manifest.write(&mut manifest_text);
        format!("{{\"manifest\":{manifest_text},\"body\":{body}}}")
    }

    /// Parse a snapshot from its on-disk JSON text, verifying version and
    /// checksum.
    pub fn from_json_str(text: &str) -> Result<ModelSnapshot, SnapshotError> {
        Self::from_json_impl(text, true)
    }

    fn from_json_impl(text: &str, with_model: bool) -> Result<ModelSnapshot, SnapshotError> {
        let doc = Json::parse(text)?;
        let manifest = manifest_from_json(doc.req("manifest")?)?;
        if manifest.format.0 != FORMAT_MAJOR {
            return Err(SnapshotError::Version {
                found: manifest.format,
                supported: (FORMAT_MAJOR, FORMAT_MINOR),
            });
        }
        let body = doc.req("body")?;
        let mut body_text = String::new();
        body.write(&mut body_text);
        let computed = checksum_of(&manifest, &body_text);
        if computed != manifest.checksum {
            return Err(SnapshotError::Checksum {
                expected: manifest.checksum,
                computed,
            });
        }

        let interactions = manifest.interactions;
        let mut keys: HashMap<CondKey, KeyStats> = HashMap::new();
        if with_model {
            let model_json = body.req("model")?;
            let key_rows = model_json
                .req("keys")?
                .as_arr()
                .ok_or_else(|| malformed("model keys must be an array"))?;
            for entry in key_rows {
                let row = entry
                    .as_arr()
                    .ok_or_else(|| malformed("model key row must be an array"))?;
                if row.len() != 3 {
                    return Err(malformed("model key row must be [key, hosts, targets]").into());
                }
                let key = key_from_json(&row[0])?;
                let hosts = row[1].as_u64().ok_or_else(|| malformed("bad host count"))? as u32;
                let targets = targets_from_json(&row[2])?
                    .into_iter()
                    .map(|(p, v)| (p, v as u32))
                    .collect();
                keys.insert(key, KeyStats { hosts, targets });
            }
        }
        let model = CondModel::from_parts(keys, interactions);

        let rule_rows = body
            .req("rules")?
            .as_arr()
            .ok_or_else(|| malformed("rules must be an array"))?;
        let mut rules: HashMap<CondKey, Vec<(Port, f64)>> = HashMap::new();
        for entry in rule_rows {
            let row = entry
                .as_arr()
                .ok_or_else(|| malformed("rule row must be an array"))?;
            if row.len() != 2 {
                return Err(malformed("rule row must be [key, targets]").into());
            }
            rules.insert(key_from_json(&row[0])?, targets_from_json(&row[1])?);
        }
        let rules = FeatureRules::from_parts(rules);

        let prior_rows = body
            .req("priors")?
            .as_arr()
            .ok_or_else(|| malformed("priors must be an array"))?;
        let mut priors = Vec::new();
        for entry in prior_rows {
            let row = entry
                .as_arr()
                .ok_or_else(|| malformed("priors row must be an array"))?;
            if row.len() != 4 {
                return Err(malformed("priors row must be [port, base, prefix, coverage]").into());
            }
            let port = Port(
                row[0]
                    .as_u64()
                    .and_then(|v| u16::try_from(v).ok())
                    .ok_or_else(|| malformed("bad priors port"))?,
            );
            let base = row[1]
                .as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| malformed("bad priors base"))?;
            let prefix = row[2]
                .as_u64()
                .and_then(|v| u8::try_from(v).ok())
                .filter(|&p| p <= 32)
                .ok_or_else(|| malformed("bad priors prefix"))?;
            let coverage = row[3]
                .as_u64()
                .ok_or_else(|| malformed("bad priors coverage"))?;
            priors.push(PriorsEntry {
                port,
                subnet: Subnet::of_ip(gps_types::Ip(base), prefix),
                coverage,
            });
        }

        Ok(ModelSnapshot {
            manifest,
            model,
            rules,
            priors,
            compiled: None,
        })
    }

    /// Serialize the snapshot to GPSB binary bytes, including the
    /// compiled `CMPL` section.
    pub fn to_binary_bytes(&self) -> Vec<u8> {
        self.to_binary_bytes_with(true)
    }

    /// [`to_binary_bytes`](Self::to_binary_bytes) with control over the
    /// derived `CMPL` section (`gps export-model --no-compiled` writes
    /// without it; loaders then compile at load time).
    pub fn to_binary_bytes_with(&self, include_compiled: bool) -> Vec<u8> {
        // The manifest checksum keeps its JSON definition (hash of the
        // canonical JSON manifest + body) in both formats, so converting
        // binary->JSON reproduces the JSON file byte-for-byte. Like
        // `to_json_string`, it is recomputed here in case the public
        // fields were edited since construction.
        let manifest = ModelManifest {
            checksum: checksum_of(&self.manifest, &self.body_text()),
            ..self.manifest.clone()
        };
        // The MANI frame additionally declares the body sections this
        // writer emitted ("sections", binary-only; `manifest_from_json`
        // ignores it, so the checksum and the JSON encoding are
        // unaffected). Readers that see the list require the container's
        // tags to match it exactly — without it, corrupting a section tag
        // would demote that section to "unknown, skip" and a file with a
        // missing-but-optional section (CMPL) would load cleanly.
        let mut section_names = vec!["MODL", "RULE", "PRIO"];
        if include_compiled {
            section_names.push("CMPL");
        }
        let mut manifest_json = manifest_to_json(&manifest);
        manifest_json.set(
            "sections",
            section_names
                .iter()
                .map(|&s| Json::Str(s.into()))
                .collect::<Vec<_>>(),
        );
        let mut manifest_text = String::new();
        manifest_json.write(&mut manifest_text);

        let mut model_keys: Vec<(&CondKey, &KeyStats)> = self.model.iter().collect();
        model_keys.sort_by_key(|(k, _)| **k);
        let mut model = ByteWriter::with_capacity(32 * model_keys.len());
        model.put_varint(model_keys.len() as u64);
        for (key, stats) in model_keys {
            key_to_binary(key, &mut model);
            model.put_varint(stats.hosts as u64);
            model.put_varint(stats.targets.len() as u64);
            for &(port, count) in &stats.targets {
                model.put_u16(port.0);
                model.put_varint(count as u64);
            }
        }

        let mut rule_rows: Vec<(&CondKey, &Vec<(Port, f64)>)> = self.rules.iter().collect();
        rule_rows.sort_by_key(|(k, _)| **k);
        let mut rules = ByteWriter::with_capacity(32 * rule_rows.len());
        rules.put_varint(rule_rows.len() as u64);
        for (key, targets) in rule_rows {
            key_to_binary(key, &mut rules);
            rules.put_varint(targets.len() as u64);
            for &(port, prob) in targets {
                rules.put_u16(port.0);
                rules.put_f64(prob);
            }
        }

        let mut priors = ByteWriter::with_capacity(12 * self.priors.len());
        priors.put_varint(self.priors.len() as u64);
        for entry in &self.priors {
            priors.put_u16(entry.port.0);
            priors.put_u32(entry.subnet.base().0);
            priors.put_u8(entry.subnet.prefix_len());
            priors.put_varint(entry.coverage);
        }

        let compiled = if include_compiled {
            // Always compiled fresh from the authoritative fields (which
            // are public and may have been edited), never copied from
            // `self.compiled`. Compilation is deterministic, so identical
            // snapshots still produce identical bytes.
            Some(compiled_to_binary(
                &crate::compiled::CompiledModel::compile(
                    &self.rules,
                    &self.priors,
                    self.manifest.step_prefix,
                ),
            ))
        } else {
            None
        };

        let model = model.into_bytes();
        let rules = rules.into_bytes();
        let priors = priors.into_bytes();
        let mut out = ByteWriter::with_capacity(
            64 + manifest_text.len()
                + model.len()
                + rules.len()
                + priors.len()
                + compiled.as_ref().map_or(0, Vec::len),
        );
        out.put_bytes(&GPSB_MAGIC);
        out.put_u8(GPSB_CONTAINER_VERSION);
        let mut sections = vec![
            (SEC_MANIFEST, manifest_text.as_bytes()),
            (SEC_MODEL, &model[..]),
            (SEC_RULES, &rules[..]),
            (SEC_PRIORS, &priors[..]),
        ];
        if let Some(compiled) = &compiled {
            sections.push((SEC_COMPILED, &compiled[..]));
        }
        for (tag, payload) in sections {
            write_section(&mut out, tag, payload).expect("snapshot section under 4 GiB");
        }
        out.into_bytes()
    }

    /// Parse a snapshot from GPSB binary bytes, verifying the container
    /// version, the manifest format major, and every section checksum.
    pub fn from_binary_bytes(bytes: &[u8]) -> Result<ModelSnapshot, SnapshotError> {
        Self::from_binary_impl(bytes, true)
    }

    fn from_binary_impl(bytes: &[u8], with_model: bool) -> Result<ModelSnapshot, SnapshotError> {
        let mut reader = ByteReader::new(bytes);
        if reader.take(4).ok() != Some(&GPSB_MAGIC[..]) {
            return Err(malformed("missing GPSB magic").into());
        }
        let container = reader.u8()?;
        if container != GPSB_CONTAINER_VERSION {
            return Err(malformed("unsupported GPSB container version").into());
        }

        // The manifest section must come first: it gates the format
        // version before any body section is interpreted.
        let manifest_section =
            read_section(&mut reader)?.ok_or_else(|| malformed("empty GPSB container"))?;
        if manifest_section.tag != SEC_MANIFEST {
            return Err(malformed("first GPSB section must be the manifest").into());
        }
        verify_section(&manifest_section)?;
        let manifest_text = std::str::from_utf8(manifest_section.payload)
            .map_err(|_| malformed("manifest is not utf-8"))?;
        let manifest_doc = Json::parse(manifest_text)?;
        let manifest = manifest_from_json(&manifest_doc)?;
        if manifest.format.0 != FORMAT_MAJOR {
            return Err(SnapshotError::Version {
                found: manifest.format,
                supported: (FORMAT_MAJOR, FORMAT_MINOR),
            });
        }
        // The MANI frame may declare the body sections the writer emitted
        // (older writers did not). When it does, the container's tags must
        // match it exactly: a corrupted tag byte otherwise turns a real
        // section into an unknown-but-checksummed one, which would be
        // silently skipped.
        let declared: Option<Vec<[u8; 4]>> = match manifest_doc.get("sections") {
            None => None,
            Some(json) => {
                let names = json
                    .as_arr()
                    .ok_or_else(|| malformed("manifest sections must be an array"))?;
                let mut tags = Vec::with_capacity(names.len());
                for name in names {
                    let tag: [u8; 4] = name
                        .as_str()
                        .and_then(|s| s.as_bytes().try_into().ok())
                        .ok_or_else(|| malformed("bad manifest section tag"))?;
                    tags.push(tag);
                }
                Some(tags)
            }
        };

        let mut model: Option<HashMap<CondKey, KeyStats>> = None;
        let mut rules: Option<HashMap<CondKey, Vec<(Port, f64)>>> = None;
        let mut priors: Option<Vec<PriorsEntry>> = None;
        let mut compiled: Option<crate::compiled::CompiledModel> = None;
        let mut seen: Vec<[u8; 4]> = Vec::new();
        while let Some(section) = read_section(&mut reader)? {
            // Every section is integrity-checked, including skipped and
            // unknown ones: "loads cleanly" must mean "every byte hashes".
            verify_section(&section)?;
            seen.push(section.tag);
            match section.tag {
                SEC_MODEL => {
                    if model.is_some() {
                        return Err(malformed("duplicate MODL section").into());
                    }
                    model = Some(if with_model {
                        model_from_binary(section.payload)?
                    } else {
                        HashMap::new()
                    });
                }
                SEC_RULES => {
                    if rules.is_some() {
                        return Err(malformed("duplicate RULE section").into());
                    }
                    rules = Some(rules_from_binary(section.payload)?);
                }
                SEC_PRIORS => {
                    if priors.is_some() {
                        return Err(malformed("duplicate PRIO section").into());
                    }
                    priors = Some(priors_from_binary(section.payload)?);
                }
                SEC_COMPILED => {
                    if compiled.is_some() {
                        return Err(malformed("duplicate CMPL section").into());
                    }
                    // A present-but-invalid CMPL section is corruption and
                    // must fail the load; only a *missing* section falls
                    // back to compiling at load time.
                    compiled = Some(compiled_from_binary(section.payload, &manifest)?);
                }
                SEC_MANIFEST => return Err(malformed("duplicate MANI section").into()),
                // Unknown tags are future minor-version sections.
                _ => {}
            }
        }
        if let Some(mut declared) = declared {
            let mut found = seen;
            declared.sort_unstable();
            found.sort_unstable();
            if declared != found {
                return Err(malformed("container sections disagree with manifest").into());
            }
        }

        Ok(ModelSnapshot {
            model: CondModel::from_parts(
                model.ok_or_else(|| malformed("missing MODL section"))?,
                manifest.interactions,
            ),
            rules: FeatureRules::from_parts(
                rules.ok_or_else(|| malformed("missing RULE section"))?,
            ),
            priors: priors.ok_or_else(|| malformed("missing PRIO section"))?,
            compiled,
            manifest,
        })
    }

    /// Write the snapshot to a file in JSON format.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        write_atomically(path.as_ref(), self.to_json_string().as_bytes())
    }

    /// Write the snapshot to a file in GPSB binary format.
    pub fn save_binary(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        write_atomically(path.as_ref(), &self.to_binary_bytes())
    }

    /// [`save_binary`](Self::save_binary) with control over the derived
    /// `CMPL` section.
    pub fn save_binary_with(
        &self,
        path: impl AsRef<Path>,
        include_compiled: bool,
    ) -> Result<(), SnapshotError> {
        write_atomically(path.as_ref(), &self.to_binary_bytes_with(include_compiled))
    }

    /// Read, version-check, and checksum-verify a snapshot file. The
    /// format is auto-detected: files opening with the `GPSB` magic are
    /// binary, anything else is parsed as JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelSnapshot, SnapshotError> {
        Self::load_impl(path.as_ref(), true)
    }

    /// Like [`load`](Self::load), but skips materializing the
    /// co-occurrence model — usually the largest section, and unused by
    /// the serving layer (which answers from rules + priors). The
    /// integrity checks still cover the full file (the binary format
    /// hash-verifies the model section without parsing it); the returned
    /// snapshot's `model` is empty.
    pub fn load_serving(path: impl AsRef<Path>) -> Result<ModelSnapshot, SnapshotError> {
        Self::load_impl(path.as_ref(), false)
    }

    /// Read only the manifest of a snapshot file — the registry helper
    /// behind `list-models`-style tooling that must describe many
    /// snapshots without materializing any of them. For GPSB files only
    /// the leading MANI section is read from disk (and checksum-verified);
    /// for JSON the document is parsed but the body is neither
    /// checksum-verified nor decoded — full integrity is what
    /// [`load`](Self::load)/[`load_serving`](Self::load_serving) are for.
    /// The format major is checked in both encodings.
    pub fn load_manifest(path: impl AsRef<Path>) -> Result<ModelManifest, SnapshotError> {
        use std::io::Read;
        let mut file = std::fs::File::open(path.as_ref())?;
        let mut head = [0u8; 13];
        let mut filled = 0;
        while filled < head.len() {
            match file.read(&mut head[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SnapshotError::Io(e)),
            }
        }
        let manifest = if filled == head.len() && head.starts_with(&GPSB_MAGIC) {
            // magic(4) | container(1) | tag(4) | payload length (u32 LE):
            // enough to size a read of just the manifest frame.
            if head[4] != GPSB_CONTAINER_VERSION {
                return Err(malformed("unsupported GPSB container version").into());
            }
            if head[5..9] != SEC_MANIFEST {
                return Err(malformed("first GPSB section must be the manifest").into());
            }
            let len = u32::from_le_bytes(head[9..13].try_into().unwrap()) as usize;
            // The length field is untrusted input: bound it by the bytes
            // actually on disk before sizing the read buffer, or a
            // corrupt header could drive a multi-GiB allocation.
            let on_disk = file.metadata()?.len().saturating_sub(head.len() as u64);
            if (len as u64) + 8 > on_disk {
                return Err(malformed("manifest section exceeds file size").into());
            }
            let mut frame = vec![0u8; len + 8];
            file.read_exact(&mut frame)?;
            let payload = &frame[..len];
            if fnv64(payload) != u64::from_le_bytes(frame[len..].try_into().unwrap()) {
                return Err(SnapshotError::Checksum {
                    expected: u64::from_le_bytes(frame[len..].try_into().unwrap()),
                    computed: fnv64(payload),
                });
            }
            let text =
                std::str::from_utf8(payload).map_err(|_| malformed("manifest is not utf-8"))?;
            manifest_from_json(&Json::parse(text)?)?
        } else {
            let mut bytes = head[..filled].to_vec();
            file.read_to_end(&mut bytes)?;
            let text = std::str::from_utf8(&bytes)
                .map_err(|_| malformed("snapshot is neither GPSB nor utf-8 JSON"))?;
            manifest_from_json(Json::parse(text)?.req("manifest")?)?
        };
        if manifest.format.0 != FORMAT_MAJOR {
            return Err(SnapshotError::Version {
                found: manifest.format,
                supported: (FORMAT_MAJOR, FORMAT_MINOR),
            });
        }
        Ok(manifest)
    }

    fn load_impl(path: &Path, with_model: bool) -> Result<ModelSnapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        if bytes.starts_with(&GPSB_MAGIC) {
            return Self::from_binary_impl(&bytes, with_model);
        }
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| malformed("snapshot is neither GPSB nor utf-8 JSON"))?;
        Self::from_json_impl(text, with_model)
    }

    /// Canonical serialization of the three artifacts (the checksummed
    /// bytes). Keys are sorted so identical models produce identical files.
    fn body_text(&self) -> String {
        let mut model_keys: Vec<(&CondKey, &KeyStats)> = self.model.iter().collect();
        model_keys.sort_by_key(|(k, _)| **k);
        let keys_json: Vec<Json> = model_keys
            .into_iter()
            .map(|(key, stats)| {
                Json::Arr(vec![
                    key_to_json(key),
                    Json::Num(stats.hosts as f64),
                    targets_to_json(stats.targets.iter().map(|&(p, c)| (p, c as f64))),
                ])
            })
            .collect();
        let mut model_json = Json::obj();
        model_json.set("keys", keys_json);

        let mut rule_rows: Vec<(&CondKey, &Vec<(Port, f64)>)> = self.rules.iter().collect();
        rule_rows.sort_by_key(|(k, _)| **k);
        let rules_json: Vec<Json> = rule_rows
            .into_iter()
            .map(|(key, targets)| {
                Json::Arr(vec![
                    key_to_json(key),
                    targets_to_json(targets.iter().copied()),
                ])
            })
            .collect();

        let priors_json: Vec<Json> = self
            .priors
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::Num(e.port.0 as f64),
                    Json::Num(e.subnet.base().0 as f64),
                    Json::Num(e.subnet.prefix_len() as f64),
                    Json::Num(e.coverage as f64),
                ])
            })
            .collect();

        let mut body = Json::obj();
        body.set("model", model_json)
            .set("rules", rules_json)
            .set("priors", priors_json);
        let mut text = String::new();
        body.write(&mut text);
        text
    }
}

fn malformed(reason: &'static str) -> GpsError {
    GpsError::parse("snapshot", "", reason)
}

/// Write-then-rename so a crash mid-write (or a concurrent reader) never
/// sees a truncated artifact and never loses the previous good one.
///
/// The temp file lives in the destination directory (rename must not cross
/// filesystems) under a name unique per (process, call) — a fixed
/// `path.with_extension("tmp")` would let two concurrent exporters to the
/// same destination clobber each other's temp data and rename a
/// half-written snapshot into place. The file is fsynced before the
/// rename, so the bytes a reader can observe under the final name are
/// durable.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::io::Write;
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    let tmp = path.with_file_name(format!(
        ".{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result.map_err(SnapshotError::Io)
}

/// How many leading bytes [`header_fingerprint`] hashes. Covers the whole
/// manifest in both encodings (the JSON document opens with the manifest
/// object; a GPSB container opens with the MANI section), and the manifest
/// embeds the body checksum — so any content change moves the fingerprint.
pub const HEADER_FINGERPRINT_BYTES: usize = 4096;

/// Cheap content fingerprint of a snapshot file: FNV-1a over its first
/// [`HEADER_FINGERPRINT_BYTES`] bytes. Used by the serving file watcher
/// alongside `(mtime, size)` — a same-size overwrite inside the
/// filesystem's mtime granularity still changes the manifest header bytes
/// (the embedded checksum covers the body), so the poll cannot miss it.
pub fn header_fingerprint(path: impl AsRef<Path>) -> std::io::Result<u64> {
    use std::io::Read;
    let mut head = vec![0u8; HEADER_FINGERPRINT_BYTES];
    let mut file = std::fs::File::open(path.as_ref())?;
    let mut filled = 0;
    while filled < head.len() {
        match file.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(fnv64(&head[..filled]))
}

/// Map a GPSB section checksum mismatch onto [`SnapshotError::Checksum`]
/// so corruption reports the same way in both formats.
fn verify_section(section: &gps_types::binary::Section<'_>) -> Result<(), SnapshotError> {
    let computed = section.computed_checksum();
    if section.stored_checksum != computed {
        return Err(SnapshotError::Checksum {
            expected: section.stored_checksum,
            computed,
        });
    }
    Ok(())
}

/// Binary key encoding, mirroring [`key_to_json`]: class discriminant,
/// anchor port, then the class-dependent app/net parts.
fn key_to_binary(key: &CondKey, out: &mut ByteWriter) {
    out.put_u8(key.class());
    out.put_u16(key.port().0);
    if let Some(f) = key.app() {
        out.put_u8(f.kind.index() as u8);
        out.put_varint(f.value.0 as u64);
    }
    if let Some(net) = key.net() {
        match net {
            NetKey::Slash(len, base) => {
                out.put_u8(NETKEY_SLASH);
                out.put_u8(len);
                out.put_u32(base);
            }
            NetKey::Asn(n) => {
                out.put_u8(NETKEY_ASN);
                out.put_varint(n as u64);
            }
        }
    }
}

fn key_from_binary(reader: &mut ByteReader<'_>) -> Result<CondKey, GpsError> {
    let class = reader.u8()?;
    let port = Port(reader.u16()?);
    let app = |reader: &mut ByteReader<'_>| -> Result<FeatureValue, GpsError> {
        let kind_idx = reader.u8()? as usize;
        let kind = *FeatureKind::ALL
            .get(kind_idx)
            .ok_or_else(|| malformed("feature kind out of range"))?;
        let sym = reader.varint_u32()?;
        Ok(FeatureValue::new(kind, Sym(sym)))
    };
    let net = |reader: &mut ByteReader<'_>| -> Result<NetKey, GpsError> {
        match reader.u8()? {
            NETKEY_SLASH => {
                let len = reader.u8()?;
                if len > 32 {
                    return Err(malformed("bad net prefix"));
                }
                Ok(NetKey::Slash(len, reader.u32()?))
            }
            NETKEY_ASN => Ok(NetKey::Asn(reader.varint_u32()?)),
            _ => Err(malformed("bad net key tag")),
        }
    };
    match class {
        4 => Ok(CondKey::Port(port)),
        5 => Ok(CondKey::PortApp(port, app(reader)?)),
        6 => Ok(CondKey::PortNet(port, net(reader)?)),
        7 => Ok(CondKey::PortAppNet(port, app(reader)?, net(reader)?)),
        _ => Err(malformed("unknown key class")),
    }
}

fn model_from_binary(payload: &[u8]) -> Result<HashMap<CondKey, KeyStats>, GpsError> {
    let mut reader = ByteReader::new(payload);
    // Minimum entry sizes: a bare Eq. 4 key is 3 bytes, plus one-byte
    // varints for the counts; each co-occurrence target is >= 3 bytes.
    let count = bounded_count(&mut reader, 5)?;
    let mut keys = HashMap::with_capacity(count);
    for _ in 0..count {
        let key = key_from_binary(&mut reader)?;
        let hosts = reader.varint_u32()?;
        let num_targets = bounded_count(&mut reader, 3)?;
        let mut targets = Vec::with_capacity(num_targets);
        for _ in 0..num_targets {
            let port = Port(reader.u16()?);
            targets.push((port, reader.varint_u32()?));
        }
        keys.insert(key, KeyStats { hosts, targets });
    }
    expect_consumed(&reader, "MODL")?;
    Ok(keys)
}

fn rules_from_binary(payload: &[u8]) -> Result<HashMap<CondKey, Vec<(Port, f64)>>, GpsError> {
    let mut reader = ByteReader::new(payload);
    let count = bounded_count(&mut reader, 4)?;
    let mut rules = HashMap::with_capacity(count);
    for _ in 0..count {
        let key = key_from_binary(&mut reader)?;
        let num_targets = bounded_count(&mut reader, 10)?;
        let mut targets = Vec::with_capacity(num_targets);
        for _ in 0..num_targets {
            let port = Port(reader.u16()?);
            targets.push((port, reader.f64()?));
        }
        rules.insert(key, targets);
    }
    expect_consumed(&reader, "RULE")?;
    Ok(rules)
}

fn priors_from_binary(payload: &[u8]) -> Result<Vec<PriorsEntry>, GpsError> {
    let mut reader = ByteReader::new(payload);
    let count = bounded_count(&mut reader, 8)?;
    let mut priors = Vec::with_capacity(count);
    for _ in 0..count {
        let port = Port(reader.u16()?);
        let base = reader.u32()?;
        let prefix = reader.u8()?;
        if prefix > 32 {
            return Err(malformed("bad priors prefix"));
        }
        priors.push(PriorsEntry {
            port,
            subnet: Subnet::of_ip(gps_types::Ip(base), prefix),
            coverage: reader.varint()?,
        });
    }
    expect_consumed(&reader, "PRIO")?;
    Ok(priors)
}

/// Encode a [`CompiledModel`](crate::compiled::CompiledModel) as the CMPL
/// section payload: the rule key table (keys sorted by `CondKey` order,
/// each with its arena offset/len), then the rule arenas as raw
/// little-endian arrays, then the priors index and arenas the same way.
/// The arenas are written (and read back) as single contiguous blocks, so
/// loading is a handful of validated bulk reads instead of a per-entry
/// decode loop.
fn compiled_to_binary(compiled: &crate::compiled::CompiledModel) -> Vec<u8> {
    let (keys, offsets, lens, ports, prob_bits) = compiled.rules.parts();
    let (step_prefix, bases, subnet_offsets, pports, pbits, global_len) = compiled.priors.parts();
    let mut out = ByteWriter::with_capacity(
        16 + 16 * keys.len() + 10 * ports.len() + 8 * bases.len() + 10 * pports.len(),
    );
    out.put_u8(step_prefix);
    out.put_varint(keys.len() as u64);
    for ((key, &offset), &len) in keys.iter().zip(offsets).zip(lens) {
        key_to_binary(key, &mut out);
        out.put_varint(offset as u64);
        out.put_varint(len as u64);
    }
    out.put_varint(ports.len() as u64);
    for &port in ports {
        out.put_u16(port);
    }
    for &bits in prob_bits {
        out.put_u64(bits);
    }
    out.put_varint(bases.len() as u64);
    for &base in bases {
        out.put_u32(base);
    }
    for &offset in subnet_offsets {
        out.put_u32(offset);
    }
    out.put_varint(global_len as u64);
    out.put_varint(pports.len() as u64);
    for &port in pports {
        out.put_u16(port);
    }
    for &bits in pbits {
        out.put_u64(bits);
    }
    out.into_bytes()
}

/// Decode and structurally validate a CMPL section payload. The payload is
/// checksummed like every section, but its slice tables are still treated
/// as untrusted: `from_parts` re-validates every invariant a query indexes
/// on, and the step prefix must agree with the manifest.
fn compiled_from_binary(
    payload: &[u8],
    manifest: &ModelManifest,
) -> Result<crate::compiled::CompiledModel, SnapshotError> {
    let mut reader = ByteReader::new(payload);
    let step_prefix = reader.u8()?;
    if step_prefix != manifest.step_prefix {
        return Err(malformed("CMPL step prefix disagrees with manifest").into());
    }

    // Rule key table: bare key (3 bytes) + offset + len varints.
    let num_keys = bounded_count(&mut reader, 5)?;
    let mut keys = Vec::with_capacity(num_keys);
    let mut offsets = Vec::with_capacity(num_keys);
    let mut lens = Vec::with_capacity(num_keys);
    for _ in 0..num_keys {
        keys.push(key_from_binary(&mut reader)?);
        offsets.push(reader.varint_u32()?);
        lens.push(reader.varint_u32()?);
    }
    // Rule arenas: ports then probability bits, contiguous.
    let arena_len = bounded_count(&mut reader, 10)?;
    let ports = bulk_u16(&mut reader, arena_len)?;
    let prob_bits = bulk_u64(&mut reader, arena_len)?;
    let rules = crate::compiled::CompiledRules::from_parts(keys, offsets, lens, ports, prob_bits)
        .map_err(|_| malformed("invalid CMPL rule layout"))?;

    // Priors index + arenas.
    let num_subnets = bounded_count(&mut reader, 8)?;
    let bases = bulk_u32(&mut reader, num_subnets)?;
    let subnet_offsets = bulk_u32(&mut reader, num_subnets + 1)?;
    let global_len = reader.varint_u32()?;
    let priors_arena_len = bounded_count(&mut reader, 10)?;
    let pports = bulk_u16(&mut reader, priors_arena_len)?;
    let pbits = bulk_u64(&mut reader, priors_arena_len)?;
    let priors = crate::compiled::CompiledPriors::from_parts(
        step_prefix,
        bases,
        subnet_offsets,
        pports,
        pbits,
        global_len,
    )
    .map_err(|_| malformed("invalid CMPL priors layout"))?;

    expect_consumed(&reader, "CMPL")?;
    Ok(crate::compiled::CompiledModel { rules, priors })
}

fn bulk_u16(reader: &mut ByteReader<'_>, count: usize) -> Result<Vec<u16>, GpsError> {
    let bytes = reader.take(count * 2)?;
    Ok(bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect())
}

fn bulk_u32(reader: &mut ByteReader<'_>, count: usize) -> Result<Vec<u32>, GpsError> {
    let bytes = reader.take(count * 4)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn bulk_u64(reader: &mut ByteReader<'_>, count: usize) -> Result<Vec<u64>, GpsError> {
    let bytes = reader.take(count * 8)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Read an element count and sanity-check it against the bytes actually
/// present (each element costs at least `min_bytes_per_item`), so a
/// corrupted count cannot drive a huge up-front allocation.
fn bounded_count(
    reader: &mut ByteReader<'_>,
    min_bytes_per_item: usize,
) -> Result<usize, GpsError> {
    let count = reader.varint()?;
    let fits = count <= (reader.remaining() / min_bytes_per_item.max(1)) as u64;
    if !fits {
        return Err(malformed("section count exceeds payload size"));
    }
    Ok(count as usize)
}

/// Trailing bytes after the declared entries mean the writer and reader
/// disagree about the schema — reject instead of silently ignoring.
fn expect_consumed(reader: &ByteReader<'_>, _section: &'static str) -> Result<(), GpsError> {
    if !reader.is_empty() {
        return Err(malformed("trailing bytes in section"));
    }
    Ok(())
}

/// FNV-1a over the canonical manifest serialization (checksum field
/// zeroed) followed by the canonical body serialization — so corruption
/// of manifest fields that drive serving behavior (step_prefix,
/// net_features, ...) is caught, not just body corruption.
fn checksum_of(manifest: &ModelManifest, body_text: &str) -> u64 {
    let mut input = String::new();
    manifest_to_json(&ModelManifest {
        checksum: 0,
        ..manifest.clone()
    })
    .write(&mut input);
    input.push_str(body_text);
    fnv64(input.as_bytes())
}

fn manifest_to_json(m: &ModelManifest) -> Json {
    let mut json = Json::obj();
    json.set(
        "format",
        vec![Json::Num(m.format.0 as f64), Json::Num(m.format.1 as f64)],
    )
    .set("universe_seed", u64_to_hex(m.universe_seed))
    .set("dataset", m.dataset_name.as_str())
    .set("step_prefix", m.step_prefix)
    .set("min_prob", m.min_prob)
    .set(
        "interactions",
        vec![
            Json::Bool(m.interactions.transport),
            Json::Bool(m.interactions.transport_app),
            Json::Bool(m.interactions.transport_net),
            Json::Bool(m.interactions.transport_app_net),
        ],
    )
    .set(
        "net_features",
        m.net_features
            .iter()
            .map(|nf| match nf {
                NetFeature::Slash(p) => {
                    Json::Arr(vec![Json::Str("s".into()), Json::Num(*p as f64)])
                }
                NetFeature::Asn => Json::Arr(vec![Json::Str("a".into())]),
            })
            .collect::<Vec<_>>(),
    )
    .set("hosts_in", m.hosts_in)
    .set("distinct_keys", m.distinct_keys)
    .set("cooccur_entries", Json::Num(m.cooccur_entries as f64))
    .set("num_rules", m.num_rules)
    .set("num_priors", m.num_priors)
    .set("checksum", u64_to_hex(m.checksum));
    json
}

fn manifest_from_json(json: &Json) -> Result<ModelManifest, GpsError> {
    let format_arr = json
        .req("format")?
        .as_arr()
        .ok_or_else(|| malformed("bad format"))?;
    if format_arr.len() != 2 {
        return Err(malformed("format must be [major, minor]"));
    }
    let format = (
        format_arr[0]
            .as_u64()
            .ok_or_else(|| malformed("bad format major"))? as u32,
        format_arr[1]
            .as_u64()
            .ok_or_else(|| malformed("bad format minor"))? as u32,
    );
    let inter = json
        .req("interactions")?
        .as_arr()
        .ok_or_else(|| malformed("bad interactions"))?;
    if inter.len() != 4 {
        return Err(malformed("interactions must have 4 flags"));
    }
    let flag = |i: usize| {
        inter[i]
            .as_bool()
            .ok_or_else(|| malformed("bad interaction flag"))
    };
    let mut net_features = Vec::new();
    for nf in json
        .req("net_features")?
        .as_arr()
        .ok_or_else(|| malformed("bad net_features"))?
    {
        let parts = nf.as_arr().ok_or_else(|| malformed("bad net feature"))?;
        match parts.first().and_then(Json::as_str) {
            Some("s") => net_features.push(NetFeature::Slash(
                parts
                    .get(1)
                    .and_then(Json::as_u64)
                    .and_then(|v| u8::try_from(v).ok())
                    .filter(|&p| p <= 32)
                    .ok_or_else(|| malformed("bad slash prefix"))?,
            )),
            Some("a") => net_features.push(NetFeature::Asn),
            _ => return Err(malformed("unknown net feature tag")),
        }
    }
    Ok(ModelManifest {
        format,
        universe_seed: u64_from_hex(
            json.req("universe_seed")?
                .as_str()
                .ok_or_else(|| malformed("bad universe_seed"))?,
        )?,
        dataset_name: json
            .req("dataset")?
            .as_str()
            .ok_or_else(|| malformed("bad dataset"))?
            .to_string(),
        step_prefix: json
            .req("step_prefix")?
            .as_u64()
            .and_then(|v| u8::try_from(v).ok())
            .filter(|&p| p <= 32)
            .ok_or_else(|| malformed("bad step_prefix"))?,
        min_prob: json
            .req("min_prob")?
            .as_f64()
            .ok_or_else(|| malformed("bad min_prob"))?,
        interactions: Interactions {
            transport: flag(0)?,
            transport_app: flag(1)?,
            transport_net: flag(2)?,
            transport_app_net: flag(3)?,
        },
        net_features,
        hosts_in: json
            .req("hosts_in")?
            .as_u64()
            .ok_or_else(|| malformed("bad hosts_in"))? as usize,
        distinct_keys: json
            .req("distinct_keys")?
            .as_u64()
            .ok_or_else(|| malformed("bad distinct_keys"))? as usize,
        cooccur_entries: json
            .req("cooccur_entries")?
            .as_u64()
            .ok_or_else(|| malformed("bad cooccur_entries"))?,
        num_rules: json
            .req("num_rules")?
            .as_u64()
            .ok_or_else(|| malformed("bad num_rules"))? as usize,
        num_priors: json
            .req("num_priors")?
            .as_u64()
            .ok_or_else(|| malformed("bad num_priors"))? as usize,
        checksum: u64_from_hex(
            json.req("checksum")?
                .as_str()
                .ok_or_else(|| malformed("bad checksum"))?,
        )?,
    })
}

/// Key encoding: `[class, port, ...]` with the Eq. class as discriminant.
/// Class 5/7 append `[kind_index, sym]`; class 6/7 append either
/// `["s", prefix, base]` or `["a", asn]`.
fn key_to_json(key: &CondKey) -> Json {
    let mut parts = vec![
        Json::Num(key.class() as f64),
        Json::Num(key.port().0 as f64),
    ];
    if let Some(f) = key.app() {
        parts.push(Json::Num(f.kind.index() as f64));
        parts.push(Json::Num(f.value.0 as f64));
    }
    if let Some(net) = key.net() {
        match net {
            NetKey::Slash(len, base) => {
                parts.push(Json::Str("s".into()));
                parts.push(Json::Num(len as f64));
                parts.push(Json::Num(base as f64));
            }
            NetKey::Asn(n) => {
                parts.push(Json::Str("a".into()));
                parts.push(Json::Num(n as f64));
            }
        }
    }
    Json::Arr(parts)
}

fn key_from_json(json: &Json) -> Result<CondKey, GpsError> {
    let parts = json
        .as_arr()
        .ok_or_else(|| malformed("key must be an array"))?;
    let class = parts
        .first()
        .and_then(Json::as_u64)
        .ok_or_else(|| malformed("bad key class"))?;
    let port = Port(
        parts
            .get(1)
            .and_then(Json::as_u64)
            .and_then(|v| u16::try_from(v).ok())
            .ok_or_else(|| malformed("bad key port"))?,
    );
    let app_at = |i: usize| -> Result<FeatureValue, GpsError> {
        let kind_idx = parts
            .get(i)
            .and_then(Json::as_u64)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| malformed("bad feature kind"))?;
        let kind = *FeatureKind::ALL
            .get(kind_idx)
            .ok_or_else(|| malformed("feature kind out of range"))?;
        let sym = parts
            .get(i + 1)
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| malformed("bad feature sym"))?;
        Ok(FeatureValue::new(kind, Sym(sym)))
    };
    let net_at = |i: usize| -> Result<NetKey, GpsError> {
        match parts.get(i).and_then(Json::as_str) {
            Some("s") => {
                let len = parts
                    .get(i + 1)
                    .and_then(Json::as_u64)
                    .and_then(|v| u8::try_from(v).ok())
                    .filter(|&p| p <= 32)
                    .ok_or_else(|| malformed("bad net prefix"))?;
                let base = parts
                    .get(i + 2)
                    .and_then(Json::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| malformed("bad net base"))?;
                Ok(NetKey::Slash(len, base))
            }
            Some("a") => Ok(NetKey::Asn(
                parts
                    .get(i + 1)
                    .and_then(Json::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| malformed("bad asn"))?,
            )),
            _ => Err(malformed("bad net key tag")),
        }
    };
    match class {
        4 => Ok(CondKey::Port(port)),
        5 => Ok(CondKey::PortApp(port, app_at(2)?)),
        6 => Ok(CondKey::PortNet(port, net_at(2)?)),
        7 => Ok(CondKey::PortAppNet(port, app_at(2)?, net_at(4)?)),
        _ => Err(malformed("unknown key class")),
    }
}

fn targets_to_json(targets: impl Iterator<Item = (Port, f64)>) -> Json {
    Json::Arr(
        targets
            .map(|(port, v)| Json::Arr(vec![Json::Num(port.0 as f64), Json::Num(v)]))
            .collect(),
    )
}

fn targets_from_json(json: &Json) -> Result<Vec<(Port, f64)>, GpsError> {
    json.as_arr()
        .ok_or_else(|| malformed("targets must be an array"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .ok_or_else(|| malformed("target must be [port, value]"))?;
            if pair.len() != 2 {
                return Err(malformed("target must be [port, value]"));
            }
            let port = Port(
                pair[0]
                    .as_u64()
                    .and_then(|v| u16::try_from(v).ok())
                    .ok_or_else(|| malformed("bad target port"))?,
            );
            let value = pair[1]
                .as_f64()
                .ok_or_else(|| malformed("bad target value"))?;
            Ok((port, value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetFeature;
    use crate::host::group_by_host;
    use gps_engine::{Backend, ExecLedger};
    use gps_scan::ServiceObservation;
    use gps_types::testutil::TestDir;
    use gps_types::{Ip, Protocol};
    use std::sync::Arc;

    fn trained_snapshot() -> ModelSnapshot {
        let mut observations = Vec::new();
        for ip in 1..=6u32 {
            observations.push(ServiceObservation {
                ip: Ip(ip),
                port: Port(80),
                ttl: 60,
                protocol: Protocol::Http,
                content: Sym(0),
                features: vec![FeatureValue::new(FeatureKind::HttpServer, Sym(7))],
            });
            observations.push(ServiceObservation {
                ip: Ip(ip),
                port: Port(443),
                ttl: 60,
                protocol: Protocol::Tls,
                content: Sym(1),
                features: vec![],
            });
        }
        let hosts = group_by_host(
            &observations,
            &[NetFeature::Slash(16), NetFeature::Asn],
            &|_| Some(9),
        );
        let (model, stats) = CondModel::build(
            &hosts,
            Interactions::ALL,
            Backend::SingleCore,
            &ExecLedger::new(),
        );
        let rules = FeatureRules::build(&model, &hosts, 1e-5);
        let priors = crate::priors::build_priors_list(&model, &hosts, 16);
        let mut snapshot = ModelSnapshot {
            manifest: ModelManifest {
                format: (FORMAT_MAJOR, FORMAT_MINOR),
                universe_seed: 0xC0FFEE,
                dataset_name: "unit".to_string(),
                step_prefix: 16,
                min_prob: 1e-5,
                interactions: Interactions::ALL,
                net_features: vec![NetFeature::Slash(16), NetFeature::Asn],
                hosts_in: stats.hosts_in,
                distinct_keys: stats.distinct_keys,
                cooccur_entries: stats.cooccur_entries,
                num_rules: rules.len(),
                num_priors: priors.len(),
                checksum: 0,
            },
            model,
            rules,
            priors,
            compiled: None,
        };
        snapshot.manifest.checksum = checksum_of(&snapshot.manifest, &snapshot.body_text());
        snapshot
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snapshot = trained_snapshot();
        let text = snapshot.to_json_string();
        let loaded = ModelSnapshot::from_json_str(&text).unwrap();
        assert_eq!(loaded.manifest, snapshot.manifest);
        assert_eq!(loaded.priors, snapshot.priors);
        assert_eq!(loaded.model.len(), snapshot.model.len());
        for (key, stats) in snapshot.model.iter() {
            let other = loaded.model.stats(key).expect("key survives round trip");
            assert_eq!(stats.hosts, other.hosts);
            assert_eq!(stats.targets, other.targets);
        }
        assert_eq!(loaded.rules.len(), snapshot.rules.len());
        for (key, targets) in snapshot.rules.iter() {
            assert_eq!(loaded.rules.get(key), Some(targets.as_slice()));
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = trained_snapshot();
        let b = trained_snapshot();
        assert_eq!(a.to_json_string(), b.to_json_string());
        // And stable across a round trip.
        let loaded = ModelSnapshot::from_json_str(&a.to_json_string()).unwrap();
        assert_eq!(loaded.to_json_string(), a.to_json_string());
    }

    #[test]
    fn save_load_file() {
        let dir = TestDir::new("save-load");
        let snapshot = trained_snapshot();
        let path = dir.path("snapshot.json");
        snapshot.save(&path).unwrap();
        let loaded = ModelSnapshot::load(&path).unwrap();
        assert_eq!(loaded.manifest, snapshot.manifest);
    }

    #[test]
    fn concurrent_saves_to_one_destination_never_corrupt() {
        // Racing exporters to the same path: with a shared fixed temp
        // name, one writer's rename could publish another's half-written
        // file. Unique temp names make every published state a complete
        // snapshot, and no temp litter may survive.
        let dir = TestDir::new("concurrent-save");
        let dir_path = dir.dir().to_path_buf();
        let path = Arc::new(dir.path("model.gpsb"));
        let snapshot = Arc::new(trained_snapshot());
        let mut writers = Vec::new();
        for t in 0..4 {
            let path = path.clone();
            let snapshot = snapshot.clone();
            writers.push(std::thread::spawn(move || {
                for i in 0..12 {
                    if (t + i) % 2 == 0 {
                        snapshot.save_binary(&*path).expect("binary save");
                    } else {
                        snapshot.save(&*path).expect("json save");
                    }
                    // Every observable state of the file is loadable.
                    ModelSnapshot::load(&*path).expect("snapshot stays complete");
                }
            }));
        }
        for w in writers {
            w.join().expect("writer thread");
        }
        ModelSnapshot::load(&*path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir_path)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
    }

    #[test]
    fn header_fingerprint_tracks_content_not_just_size() {
        let dir = TestDir::new("fingerprint");
        let snapshot = trained_snapshot();
        let path = dir.path("model.gpsb");
        snapshot.save_binary(&path).unwrap();
        let original = header_fingerprint(&path).unwrap();
        assert_eq!(
            header_fingerprint(&path).unwrap(),
            original,
            "fingerprint is deterministic"
        );
        // Same-size overwrite with different content: the trained model is
        // unchanged except one priors coverage count, so file size stays
        // identical while the body (and the manifest's embedded checksum)
        // moves.
        let mut tweaked = snapshot.clone();
        tweaked.priors[0].coverage += 1;
        tweaked.save_binary(&path).unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            {
                let size_probe = dir.path("probe.gpsb");
                snapshot.save_binary(&size_probe).unwrap();
                std::fs::metadata(&size_probe).unwrap().len()
            },
            "test premise: the overwrite is size-preserving"
        );
        assert_ne!(
            header_fingerprint(&path).unwrap(),
            original,
            "content change must move the fingerprint"
        );
    }

    #[test]
    fn load_manifest_reads_header_only() {
        let dir = TestDir::new("manifest-peek");
        let snapshot = trained_snapshot();
        let json_path = dir.path("model.json");
        let bin_path = dir.path("model.gpsb");
        snapshot.save(&json_path).unwrap();
        snapshot.save_binary(&bin_path).unwrap();
        assert_eq!(
            ModelSnapshot::load_manifest(&json_path).unwrap(),
            snapshot.manifest
        );
        assert_eq!(
            ModelSnapshot::load_manifest(&bin_path).unwrap(),
            snapshot.manifest
        );
        // GPSB: a corrupted manifest byte fails the section checksum even
        // though nothing past the MANI frame is read.
        let mut bytes = std::fs::read(&bin_path).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&bin_path, &bytes).unwrap();
        assert!(matches!(
            ModelSnapshot::load_manifest(&bin_path),
            Err(SnapshotError::Checksum { .. } | SnapshotError::Malformed(_))
        ));
        // Foreign major is rejected from the peek too.
        let mut bumped = snapshot.clone();
        bumped.manifest.format = (FORMAT_MAJOR + 1, 0);
        bumped.save_binary(&bin_path).unwrap();
        assert!(matches!(
            ModelSnapshot::load_manifest(&bin_path),
            Err(SnapshotError::Version { .. })
        ));
    }

    #[test]
    fn checksum_detects_corruption() {
        let snapshot = trained_snapshot();
        let text = snapshot.to_json_string();
        // Flip a digit inside the body (a priors coverage count).
        let idx = text.rfind("\"priors\":[[").unwrap() + 11;
        let mut corrupt = text.clone();
        let original = corrupt.as_bytes()[idx];
        let replacement = if original == b'1' { '2' } else { '1' };
        corrupt.replace_range(idx..idx + 1, &replacement.to_string());
        match ModelSnapshot::from_json_str(&corrupt) {
            Err(SnapshotError::Checksum { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn checksum_covers_manifest_fields() {
        // Corrupting a manifest field that drives serving behavior (the
        // step prefix) must fail verification, not load silently.
        let snapshot = trained_snapshot();
        let text = snapshot
            .to_json_string()
            .replace("\"step_prefix\":16", "\"step_prefix\":20");
        match ModelSnapshot::from_json_str(&text) {
            Err(SnapshotError::Checksum { .. }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn malformed_sections_are_rejected_not_emptied() {
        // A wrong-typed section must be a Malformed error, not an empty
        // model. The checksum is recomputed over the tampered body so
        // only the type validation can reject it.
        let snapshot = trained_snapshot();
        for section in ["rules", "priors"] {
            let mut doc = Json::parse(&snapshot.to_json_string()).unwrap();
            let Json::Obj(fields) = &mut doc else {
                unreachable!()
            };
            let body = &mut fields.iter_mut().find(|(k, _)| k == "body").unwrap().1;
            let Json::Obj(body_fields) = body else {
                unreachable!()
            };
            body_fields
                .iter_mut()
                .find(|(k, _)| k == section)
                .unwrap()
                .1 = Json::obj();
            let mut body_text = String::new();
            body.write(&mut body_text);
            let mut manifest = snapshot.manifest.clone();
            manifest.checksum = checksum_of(&manifest, &body_text);
            let mut manifest_text = String::new();
            manifest_to_json(&manifest).write(&mut manifest_text);
            let text = format!("{{\"manifest\":{manifest_text},\"body\":{body_text}}}");
            match ModelSnapshot::from_json_str(&text) {
                Err(SnapshotError::Malformed(_)) => {}
                other => panic!("object-typed {section} should be Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_foreign_major_version() {
        let snapshot = trained_snapshot();
        let text = snapshot
            .to_json_string()
            .replace("\"format\":[1,", "\"format\":[2,");
        match ModelSnapshot::from_json_str(&text) {
            Err(SnapshotError::Version { found, .. }) => assert_eq!(found.0, 2),
            other => panic!("expected version failure, got {other:?}"),
        }
    }

    #[test]
    fn accepts_newer_minor_version() {
        // A newer-minor writer computes its checksum over its own
        // manifest, so simulate by re-serializing with the bumped minor
        // (a raw text edit would — correctly — fail the checksum).
        let mut snapshot = trained_snapshot();
        snapshot.manifest.format = (FORMAT_MAJOR, 99);
        let loaded = ModelSnapshot::from_json_str(&snapshot.to_json_string()).unwrap();
        assert_eq!(loaded.manifest.format, (FORMAT_MAJOR, 99));
    }

    #[test]
    fn load_serving_skips_model_but_verifies() {
        let dir = TestDir::new("serving");
        let snapshot = trained_snapshot();
        let path = dir.path("snapshot.json");
        snapshot.save(&path).unwrap();
        let served = ModelSnapshot::load_serving(&path).unwrap();
        assert!(served.model.is_empty(), "model section skipped");
        assert_eq!(served.manifest, snapshot.manifest);
        assert_eq!(served.priors, snapshot.priors);
        assert_eq!(served.rules.len(), snapshot.rules.len());
        // Corruption is still caught on the serving path.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace("\"step_prefix\":16", "\"step_prefix\":20"),
        )
        .unwrap();
        assert!(matches!(
            ModelSnapshot::load_serving(&path),
            Err(SnapshotError::Checksum { .. })
        ));
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let snapshot = trained_snapshot();
        let bytes = snapshot.to_binary_bytes();
        let loaded = ModelSnapshot::from_binary_bytes(&bytes).unwrap();
        assert_eq!(loaded.manifest, snapshot.manifest);
        assert_eq!(loaded.priors, snapshot.priors);
        assert_eq!(loaded.model.len(), snapshot.model.len());
        for (key, stats) in snapshot.model.iter() {
            let other = loaded.model.stats(key).expect("key survives round trip");
            assert_eq!(stats.hosts, other.hosts);
            assert_eq!(stats.targets, other.targets);
        }
        assert_eq!(loaded.rules.len(), snapshot.rules.len());
        for (key, targets) in snapshot.rules.iter() {
            assert_eq!(loaded.rules.get(key), Some(targets.as_slice()));
        }
        // Binary -> JSON reproduces the directly-saved JSON byte-for-byte.
        assert_eq!(loaded.to_json_string(), snapshot.to_json_string());
        // And binary serialization is deterministic too.
        assert_eq!(loaded.to_binary_bytes(), bytes);
    }

    #[test]
    fn load_auto_detects_format_by_magic() {
        let dir = TestDir::new("auto-detect");
        let snapshot = trained_snapshot();
        let json_path = dir.path("snapshot.json");
        let bin_path = dir.path("snapshot.gpsb");
        snapshot.save(&json_path).unwrap();
        snapshot.save_binary(&bin_path).unwrap();
        assert!(std::fs::read(&bin_path).unwrap().starts_with(b"GPSB"));
        let from_json = ModelSnapshot::load(&json_path).unwrap();
        let from_bin = ModelSnapshot::load(&bin_path).unwrap();
        assert_eq!(from_json.manifest, from_bin.manifest);
        assert_eq!(from_json.priors, from_bin.priors);
        assert_eq!(from_json.to_json_string(), from_bin.to_json_string());
        // load_serving on the binary path skips the model but keeps the rest.
        let served = ModelSnapshot::load_serving(&bin_path).unwrap();
        assert!(served.model.is_empty());
        assert_eq!(served.rules.len(), snapshot.rules.len());
        assert_eq!(served.priors, snapshot.priors);
    }

    #[test]
    fn binary_corruption_is_rejected_per_section() {
        let snapshot = trained_snapshot();
        let clean = snapshot.to_binary_bytes();
        // Flip one byte in every section payload region; each must fail
        // with a checksum error (both on the full and the serving path).
        let step = (clean.len() / 59).max(1);
        let mut hits = 0;
        for i in (5..clean.len()).step_by(step) {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x10;
            let full = ModelSnapshot::from_binary_bytes(&corrupt);
            assert!(full.is_err(), "flip at byte {i} must not load");
            if matches!(full, Err(SnapshotError::Checksum { .. })) {
                hits += 1;
            }
            assert!(
                ModelSnapshot::from_binary_impl(&corrupt, false).is_err(),
                "flip at byte {i} must not load for serving either"
            );
        }
        assert!(hits > 0, "at least some flips must land in payloads");
    }

    #[test]
    fn binary_truncation_is_rejected_at_every_prefix() {
        let snapshot = trained_snapshot();
        let clean = snapshot.to_binary_bytes();
        let step = (clean.len() / 97).max(1);
        for len in (0..clean.len()).step_by(step) {
            assert!(
                ModelSnapshot::from_binary_bytes(&clean[..len]).is_err(),
                "prefix of {len} bytes must not load"
            );
        }
    }

    #[test]
    fn binary_rejects_foreign_versions() {
        let snapshot = trained_snapshot();
        let clean = snapshot.to_binary_bytes();
        // Foreign container version.
        let mut wrong_container = clean.clone();
        wrong_container[4] = 99;
        assert!(matches!(
            ModelSnapshot::from_binary_bytes(&wrong_container),
            Err(SnapshotError::Malformed(_))
        ));
        // Foreign manifest major: rewrite the manifest through the writer
        // (a raw byte edit would — correctly — fail the section checksum).
        let mut bumped = snapshot.clone();
        bumped.manifest.format = (FORMAT_MAJOR + 1, 0);
        match ModelSnapshot::from_binary_bytes(&bumped.to_binary_bytes()) {
            Err(SnapshotError::Version { found, .. }) => assert_eq!(found.0, FORMAT_MAJOR + 1),
            other => panic!("expected version failure, got {other:?}"),
        }
        // Newer minor is accepted.
        let mut newer_minor = snapshot.clone();
        newer_minor.manifest.format = (FORMAT_MAJOR, 99);
        let loaded = ModelSnapshot::from_binary_bytes(&newer_minor.to_binary_bytes()).unwrap();
        assert_eq!(loaded.manifest.format, (FORMAT_MAJOR, 99));
        // Not-a-snapshot inputs.
        assert!(ModelSnapshot::from_binary_bytes(b"").is_err());
        assert!(ModelSnapshot::from_binary_bytes(b"JSON{}").is_err());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let snapshot = trained_snapshot();
        let json = snapshot.to_json_string();
        let binary = snapshot.to_binary_bytes();
        assert!(
            binary.len() < json.len(),
            "binary {} >= json {}",
            binary.len(),
            json.len()
        );
    }

    #[test]
    fn from_run_packages_pipeline_output() {
        use crate::dataset::censys_dataset;
        use gps_synthnet::{Internet, UniverseConfig};
        let net = Internet::generate(&UniverseConfig::tiny(77));
        let ds = censys_dataset(&net, 200, 0.05, 0, 1);
        let config = GpsConfig {
            seed_fraction: 0.05,
            step_prefix: 20,
            ..GpsConfig::default()
        };
        let run = crate::pipeline::run_gps(&net, &ds, &config);
        let snapshot = ModelSnapshot::from_run(&run, &config, 77);
        assert_eq!(snapshot.manifest.num_priors, run.priors_list.len());
        assert_eq!(
            snapshot.manifest.distinct_keys,
            run.model_stats.distinct_keys
        );
        assert!(snapshot.manifest.checksum != 0);
        let loaded = ModelSnapshot::from_json_str(&snapshot.to_json_string()).unwrap();
        assert_eq!(loaded.priors, snapshot.priors);
    }

    #[test]
    fn cmpl_section_round_trips_the_compiled_model() {
        let snapshot = trained_snapshot();
        let bytes = snapshot.to_binary_bytes();
        let loaded = ModelSnapshot::from_binary_bytes(&bytes).unwrap();
        // The loaded CMPL equals an in-process compile of the same tables
        // (compilation is deterministic).
        let expected = crate::compiled::CompiledModel::compile(
            &snapshot.rules,
            &snapshot.priors,
            snapshot.manifest.step_prefix,
        );
        assert_eq!(loaded.compiled, Some(expected));
        // The serving path carries it too.
        let dir = TestDir::new("cmpl-serving");
        let path = dir.path("m.gpsb");
        snapshot.save_binary(&path).unwrap();
        let served = ModelSnapshot::load_serving(&path).unwrap();
        assert!(served.compiled.is_some());
    }

    #[test]
    fn cmpl_less_binary_loads_without_compiled() {
        let snapshot = trained_snapshot();
        let with = snapshot.to_binary_bytes_with(true);
        let without = snapshot.to_binary_bytes_with(false);
        assert!(without.len() < with.len());
        assert_eq!(snapshot.to_binary_bytes(), with, "compiled is the default");
        // The stripped form has no CMPL section and no trace of the tag.
        assert!(!without.windows(4).any(|w| w == SEC_COMPILED));
        let loaded = ModelSnapshot::from_binary_bytes(&without).unwrap();
        assert!(loaded.compiled.is_none());
        // Everything authoritative survives identically.
        assert_eq!(loaded.manifest, snapshot.manifest);
        assert_eq!(loaded.to_json_string(), snapshot.to_json_string());
        // Re-serializing regains the CMPL section: it is derived data.
        assert_eq!(loaded.to_binary_bytes(), with);
    }

    #[test]
    fn cmpl_tag_flip_is_rejected_via_section_manifest() {
        // A flipped section tag turns CMPL into an unknown (but
        // checksum-valid) section; the manifest's declared section list
        // is what catches it.
        let snapshot = trained_snapshot();
        let clean = snapshot.to_binary_bytes();
        let pos = clean
            .windows(4)
            .position(|w| w == SEC_COMPILED)
            .expect("CMPL tag present");
        for i in 0..4 {
            let mut corrupt = clean.clone();
            corrupt[pos + i] ^= 0x01;
            assert!(
                ModelSnapshot::from_binary_bytes(&corrupt).is_err(),
                "tag byte {i} flip must not load"
            );
        }
    }
}
