//! Compiled struct-of-arrays prediction core.
//!
//! [`FeatureRules`] and the §5.3 priors list are built as hash maps — the
//! right shape for *training*, where keys arrive in model order, but the
//! wrong shape for *querying*: every warm lookup chases a hashed bucket to
//! a separately allocated `Vec`, and every cold lookup clones a ranked
//! list out of a `HashMap<Subnet, Vec<..>>`. This module compiles both
//! into dense, arena-backed forms shared by the offline pipeline and the
//! serving layer:
//!
//! - [`CompiledRules`] — conditioning keys interned to dense row ids
//!   (sorted by [`CondKey`] order), every row an `(offset, len)` slice
//!   into one contiguous `(u16 port, u64 prob-bits)` arena. Rows with
//!   identical target lists share storage, and a list that is a prefix of
//!   another points into the longer list's slice. Bare Eq. 4 keys resolve
//!   through a direct-indexed 65536-entry table — no hashing at all on
//!   the hottest lookup of the warm path.
//! - [`CompiledPriors`] — §5.3 rankings as sorted dense arrays: one
//!   subnet-base index (binary-searchable, `step_prefix` subnets only —
//!   the only granularity cold lookups can reach) over the same arena
//!   layout, with the global fallback ranking at the tail.
//!
//! Probabilities are carried as raw `f64` bits end to end, so answers
//! assembled from the compiled form are **bit-identical** to the HashMap
//! path — asserted by the parity suite in `tests/property_invariants.rs`.

use std::collections::HashMap;

use gps_types::{DenseInterner, Ip, Port, Subnet};

use crate::model::{CondKey, NetKey};
use crate::predict::FeatureRules;
use crate::priors::PriorsEntry;

/// Sentinel row id: "no rule for this key".
const ROW_NONE: u32 = u32::MAX;

/// Pack an Eq. 6 key into one integer: tag in bits 62–63 (1 = slash,
/// 2 = ASN — never 0, so 0 doubles as the probe table's empty slot),
/// prefix length in 48–53, anchor port in 32–47, base/ASN in 0–31.
#[inline]
fn pack_net(port: u16, net: &NetKey) -> u64 {
    match *net {
        NetKey::Slash(len, base) => {
            (1 << 62) | ((len as u64) << 48) | ((port as u64) << 32) | base as u64
        }
        NetKey::Asn(asn) => (2 << 62) | ((port as u64) << 32) | asn as u64,
    }
}

/// Open-addressed, linear-probed map from packed Eq. 6 keys to row ids.
///
/// The warm path resolves two `PortNet` keys for every bare-port key, and
/// `HashMap<CondKey, _>`'s SipHash over the enum dominated that lookup.
/// Packing the key into a `u64` and mixing it with one multiply keeps the
/// whole probe to a handful of cycles; at ≤50% load the expected probe
/// chain is ~1 slot.
#[derive(Debug, Clone, PartialEq)]
struct NetIndex {
    /// Power-of-two slot count minus one.
    mask: u64,
    /// `(packed key, row id)`; packed key 0 marks an empty slot.
    slots: Vec<(u64, u32)>,
}

impl NetIndex {
    fn build(entries: impl ExactSizeIterator<Item = (u64, u32)>) -> NetIndex {
        let capacity = (entries.len().max(4) * 2).next_power_of_two() as u64;
        let mut index = NetIndex {
            mask: capacity - 1,
            slots: vec![(0, ROW_NONE); capacity as usize],
        };
        for (key, row) in entries {
            debug_assert_ne!(key, 0);
            let mut i = (mix(key) & index.mask) as usize;
            while index.slots[i].0 != 0 {
                i = (i + 1) & index.mask as usize;
            }
            index.slots[i] = (key, row);
        }
        index
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        let mut i = (mix(key) & self.mask) as usize;
        loop {
            let (slot_key, row) = self.slots[i];
            if slot_key == key {
                return Some(row);
            }
            if slot_key == 0 {
                return None;
            }
            i = (i + 1) & self.mask as usize;
        }
    }
}

/// Fibonacci-multiply mix: one multiply and a fold of the high bits,
/// enough to spread packed keys whose entropy sits in distinct bit ranges.
#[inline]
fn mix(key: u64) -> u64 {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

/// [`CompiledRules::parts`]: `(keys, offsets, lens, ports, prob_bits)`.
pub type RuleParts<'a> = (&'a [CondKey], &'a [u32], &'a [u32], &'a [u16], &'a [u64]);

/// [`CompiledPriors::parts`]: `(step_prefix, subnet_bases,
/// subnet_offsets, ports, prob_bits, global_len)`.
pub type PriorParts<'a> = (u8, &'a [u32], &'a [u32], &'a [u16], &'a [u64], u32);

/// The §5.4 rule list in query-optimized form. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRules {
    /// Conditioning keys, sorted by `CondKey` order; position = row id.
    keys: Vec<CondKey>,
    /// Per row: start of its target slice in the arenas.
    offsets: Vec<u32>,
    /// Per row: number of targets.
    lens: Vec<u32>,
    /// Target ports, all rows concatenated (rows may overlap via sharing).
    ports: Vec<u16>,
    /// Target probabilities as raw `f64` bits, parallel to `ports`.
    prob_bits: Vec<u64>,
    /// Direct index for bare Eq. 4 keys: port → row id (`ROW_NONE` = none).
    eq4: Box<[u32]>,
    /// Packed-key probe table for Eq. 6 keys — the warm path's other
    /// lookup class, served without hashing a `CondKey`.
    net_index: NetIndex,
    /// Row ids for the application key classes (Eq. 5/7, pipeline-only).
    index: HashMap<CondKey, u32>,
    /// Total (tuple → port) rule count, mirroring `FeatureRules::len`.
    num_rules: usize,
}

impl CompiledRules {
    /// Compile a rule map. Deterministic: identical rule content produces
    /// identical arenas regardless of hash iteration order.
    pub fn from_rules(rules: &FeatureRules) -> CompiledRules {
        let mut rows: Vec<(&CondKey, &Vec<(Port, f64)>)> = rules.iter().collect();
        rows.sort_by_key(|(k, _)| **k);

        // Intern each row's target list; identical lists collapse to one id.
        let mut lists: DenseInterner<Vec<(u16, u64)>> = DenseInterner::new();
        let row_lists: Vec<u32> = rows
            .iter()
            .map(|(_, targets)| {
                let list: Vec<(u16, u64)> = targets
                    .iter()
                    .map(|&(port, prob)| (port.0, prob.to_bits()))
                    .collect();
                lists.intern(&list)
            })
            .collect();

        // Lay out unique lists in one arena with prefix sharing: sorted
        // lexicographically, a list's prefixes sort immediately before it,
        // so writing in *reverse* order lets any list that prefixes its
        // successor point into the successor's (already written) slice —
        // and prefix-of-prefix chains collapse transitively.
        let mut order: Vec<u32> = (0..lists.len() as u32).collect();
        order.sort_by(|&a, &b| lists.resolve(a).cmp(lists.resolve(b)));
        let mut ports: Vec<u16> = Vec::new();
        let mut prob_bits: Vec<u64> = Vec::new();
        let mut list_offsets: Vec<u32> = vec![0; lists.len()];
        let mut prev: Option<(u32, u32)> = None; // (list id, offset)
        for &id in order.iter().rev() {
            let list = lists.resolve(id);
            let offset = match prev {
                Some((prev_id, prev_offset))
                    if lists.resolve(prev_id).starts_with(list.as_slice()) =>
                {
                    prev_offset
                }
                _ => {
                    let offset = ports.len() as u32;
                    for &(port, bits) in list {
                        ports.push(port);
                        prob_bits.push(bits);
                    }
                    offset
                }
            };
            list_offsets[id as usize] = offset;
            prev = Some((id, offset));
        }

        let keys: Vec<CondKey> = rows.iter().map(|(k, _)| **k).collect();
        let offsets: Vec<u32> = row_lists
            .iter()
            .map(|&id| list_offsets[id as usize])
            .collect();
        let lens: Vec<u32> = row_lists
            .iter()
            .map(|&id| lists.resolve(id).len() as u32)
            .collect();
        CompiledRules::from_parts(keys, offsets, lens, ports, prob_bits)
            .expect("freshly compiled rules are structurally valid")
    }

    /// Assemble from decoded parts (the GPSB `CMPL` section), validating
    /// every structural invariant a query relies on.
    pub fn from_parts(
        keys: Vec<CondKey>,
        offsets: Vec<u32>,
        lens: Vec<u32>,
        ports: Vec<u16>,
        prob_bits: Vec<u64>,
    ) -> Result<CompiledRules, String> {
        if offsets.len() != keys.len() || lens.len() != keys.len() {
            return Err("rule slice tables disagree with key count".into());
        }
        if ports.len() != prob_bits.len() {
            return Err("rule arenas disagree in length".into());
        }
        if keys.len() > ROW_NONE as usize {
            return Err("too many rule keys".into());
        }
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            return Err("rule keys not sorted/unique".into());
        }
        let arena_len = ports.len() as u64;
        let mut num_rules = 0usize;
        for (&offset, &len) in offsets.iter().zip(&lens) {
            if offset as u64 + len as u64 > arena_len {
                return Err("rule slice exceeds arena".into());
            }
            num_rules += len as usize;
        }
        let mut eq4 = vec![ROW_NONE; 1 << 16].into_boxed_slice();
        let mut net_entries: Vec<(u64, u32)> = Vec::new();
        let mut index = HashMap::new();
        for (row, key) in keys.iter().enumerate() {
            match key {
                CondKey::Port(p) => eq4[p.0 as usize] = row as u32,
                CondKey::PortNet(p, net) => net_entries.push((pack_net(p.0, net), row as u32)),
                _ => {
                    index.insert(*key, row as u32);
                }
            }
        }
        Ok(CompiledRules {
            keys,
            offsets,
            lens,
            ports,
            prob_bits,
            eq4,
            net_index: NetIndex::build(net_entries.into_iter()),
            index,
            num_rules,
        })
    }

    /// Row id for a bare Eq. 4 key — one array load, no hashing.
    #[inline]
    pub fn port_row(&self, port: u16) -> Option<u32> {
        match self.eq4[port as usize] {
            ROW_NONE => None,
            row => Some(row),
        }
    }

    /// Row id for an Eq. 6 key — a packed-integer probe, no hashing of
    /// the `CondKey` enum.
    #[inline]
    pub fn net_row(&self, port: u16, net: &NetKey) -> Option<u32> {
        self.net_index.get(pack_net(port, net))
    }

    /// Row id for any key class.
    #[inline]
    pub fn row(&self, key: &CondKey) -> Option<u32> {
        match key {
            CondKey::Port(p) => self.port_row(p.0),
            CondKey::PortNet(p, net) => self.net_row(p.0, net),
            _ => self.index.get(key).copied(),
        }
    }

    /// A row's target slice: `(ports, probability bits)`, parallel arrays.
    #[inline]
    pub fn row_slices(&self, row: u32) -> (&[u16], &[u64]) {
        let offset = self.offsets[row as usize] as usize;
        let len = self.lens[row as usize] as usize;
        (
            &self.ports[offset..offset + len],
            &self.prob_bits[offset..offset + len],
        )
    }

    /// Targets of `key` as `(Port, f64)`, in stored (rule) order.
    pub fn get(&self, key: &CondKey) -> Option<impl Iterator<Item = (Port, f64)> + '_> {
        self.row(key).map(|row| {
            let (ports, bits) = self.row_slices(row);
            ports
                .iter()
                .zip(bits)
                .map(|(&p, &b)| (Port(p), f64::from_bits(b)))
        })
    }

    /// Total (tuple → port) rule count.
    pub fn len(&self) -> usize {
        self.num_rules
    }

    pub fn is_empty(&self) -> bool {
        self.num_rules == 0
    }

    /// Number of distinct conditioning keys.
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Arena length in entries (shared storage counted once).
    pub fn arena_len(&self) -> usize {
        self.ports.len()
    }

    /// Codec accessors (GPSB `CMPL` section writer).
    pub fn parts(&self) -> RuleParts<'_> {
        (
            &self.keys,
            &self.offsets,
            &self.lens,
            &self.ports,
            &self.prob_bits,
        )
    }
}

/// The §5.3 priors rankings in query-optimized form. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPriors {
    /// The step prefix cold lookups key on.
    step_prefix: u8,
    /// Sorted bases of `step_prefix`-length subnets with a ranking.
    subnet_bases: Vec<u32>,
    /// Per subnet: start of its ranking in the arenas; one extra entry
    /// marks the end of the last subnet slice (= start of the global
    /// ranking's storage).
    subnet_offsets: Vec<u32>,
    /// Ranked ports, subnet slices concatenated, global ranking at the
    /// tail.
    ports: Vec<u16>,
    /// Normalized ranking weights as raw `f64` bits, parallel to `ports`.
    prob_bits: Vec<u64>,
    /// Length of the global ranking at the arena tail.
    global_len: u32,
}

impl CompiledPriors {
    /// Compile the priors list in one pass, normalizing coverage within
    /// each subnet (and globally) exactly as the HashMap serving path did:
    /// weights accumulate in entry order, so compiled cold answers are
    /// bit-identical.
    pub fn from_entries(priors: &[PriorsEntry], step_prefix: u8) -> CompiledPriors {
        // Group entries by subnet, preserving entry order within a group.
        let mut group_of: HashMap<Subnet, usize> = HashMap::new();
        let mut groups: Vec<(Subnet, Vec<(u16, f64)>)> = Vec::new();
        // Global ranking: per-port coverage accumulated in entry order.
        // The sums are integer-valued f64s, so addition order cannot
        // change the result while totals stay below 2^53 — the same
        // exactness the HashMap path has always leaned on.
        let mut global_acc: Vec<f64> = Vec::new();
        let mut global_touched: Vec<u16> = Vec::new();
        for entry in priors {
            let idx = *group_of.entry(entry.subnet).or_insert_with(|| {
                groups.push((entry.subnet, Vec::new()));
                groups.len() - 1
            });
            groups[idx].1.push((entry.port.0, entry.coverage as f64));
            if global_acc.is_empty() {
                global_acc = vec![0.0; 1 << 16];
            }
            if global_acc[entry.port.0 as usize] == 0.0 {
                global_touched.push(entry.port.0);
            }
            global_acc[entry.port.0 as usize] += entry.coverage as f64;
        }

        // Only step-prefix subnets are reachable by a cold lookup; sort
        // them by base for the binary-searchable index.
        let mut indexed: Vec<(u32, Vec<(u16, f64)>)> = groups
            .into_iter()
            .filter(|(subnet, _)| subnet.prefix_len() == step_prefix)
            .map(|(subnet, ranked)| (subnet.base().0, ranked))
            .collect();
        indexed.sort_by_key(|&(base, _)| base);

        let mut subnet_bases = Vec::with_capacity(indexed.len());
        let mut subnet_offsets = Vec::with_capacity(indexed.len() + 1);
        let mut ports: Vec<u16> = Vec::new();
        let mut prob_bits: Vec<u64> = Vec::new();
        for (base, mut ranked) in indexed {
            subnet_bases.push(base);
            subnet_offsets.push(ports.len() as u32);
            normalize(&mut ranked);
            for (port, prob) in ranked {
                ports.push(port);
                prob_bits.push(prob.to_bits());
            }
        }
        subnet_offsets.push(ports.len() as u32);

        // Global ranking at the tail. A port touched only by zero-coverage
        // entries keeps its (deduplicated) 0.0 weight, like the HashMap's
        // `or_default` did.
        let mut global: Vec<(u16, f64)> = global_touched
            .into_iter()
            .map(|port| (port, global_acc[port as usize]))
            .collect();
        normalize(&mut global);
        let global_len = global.len() as u32;
        for (port, prob) in global {
            ports.push(port);
            prob_bits.push(prob.to_bits());
        }

        CompiledPriors::from_parts(
            step_prefix,
            subnet_bases,
            subnet_offsets,
            ports,
            prob_bits,
            global_len,
        )
        .expect("freshly compiled priors are structurally valid")
    }

    /// Assemble from decoded parts (the GPSB `CMPL` section), validating
    /// every structural invariant a query relies on.
    pub fn from_parts(
        step_prefix: u8,
        subnet_bases: Vec<u32>,
        subnet_offsets: Vec<u32>,
        ports: Vec<u16>,
        prob_bits: Vec<u64>,
        global_len: u32,
    ) -> Result<CompiledPriors, String> {
        if step_prefix > 32 {
            return Err("bad priors step prefix".into());
        }
        if subnet_offsets.len() != subnet_bases.len() + 1 {
            return Err("priors offset table disagrees with subnet count".into());
        }
        if ports.len() != prob_bits.len() {
            return Err("priors arenas disagree in length".into());
        }
        if !subnet_bases.windows(2).all(|w| w[0] < w[1]) {
            return Err("priors subnet index not sorted/unique".into());
        }
        if !subnet_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("priors offsets not monotonic".into());
        }
        if subnet_offsets.first().copied().unwrap_or(0) != 0 {
            return Err("priors offsets must start at 0".into());
        }
        let tail = subnet_offsets.last().copied().unwrap_or(0) as u64;
        if tail + global_len as u64 != ports.len() as u64 {
            return Err("priors arena length disagrees with slices".into());
        }
        Ok(CompiledPriors {
            step_prefix,
            subnet_bases,
            subnet_offsets,
            ports,
            prob_bits,
            global_len,
        })
    }

    pub fn step_prefix(&self) -> u8 {
        self.step_prefix
    }

    /// Cold ranking for an IP: its step subnet's slice, or the global
    /// fallback. Returns `(ports, probability bits)`, parallel arrays,
    /// already normalized and sorted descending.
    #[inline]
    pub fn cold(&self, ip: Ip) -> (&[u16], &[u64]) {
        let base = Subnet::of_ip(ip, self.step_prefix).base().0;
        match self.subnet_bases.binary_search(&base) {
            Ok(idx) => {
                let start = self.subnet_offsets[idx] as usize;
                let end = self.subnet_offsets[idx + 1] as usize;
                (&self.ports[start..end], &self.prob_bits[start..end])
            }
            Err(_) => self.global(),
        }
    }

    /// The global fallback ranking.
    #[inline]
    pub fn global(&self) -> (&[u16], &[u64]) {
        let start = self.ports.len() - self.global_len as usize;
        (&self.ports[start..], &self.prob_bits[start..])
    }

    /// Number of indexed (step-prefix) subnets.
    pub fn num_subnets(&self) -> usize {
        self.subnet_bases.len()
    }

    /// Codec accessors (GPSB `CMPL` section writer).
    pub fn parts(&self) -> PriorParts<'_> {
        (
            self.step_prefix,
            &self.subnet_bases,
            &self.subnet_offsets,
            &self.ports,
            &self.prob_bits,
            self.global_len,
        )
    }
}

/// Coverage → within-group probability weight, then descending sort with
/// port-ascending tiebreak. Mirrors the serving layer's ranking exactly.
fn normalize(ranked: &mut [(u16, f64)]) {
    let total: f64 = ranked.iter().map(|&(_, c)| c).sum();
    if total > 0.0 {
        for (_, c) in ranked.iter_mut() {
            *c /= total;
        }
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

/// Both compiled artifacts: everything a query (warm or cold) touches.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    pub rules: CompiledRules,
    pub priors: CompiledPriors,
}

impl CompiledModel {
    /// Compile a snapshot's rule map and priors list.
    pub fn compile(rules: &FeatureRules, priors: &[PriorsEntry], step_prefix: u8) -> CompiledModel {
        CompiledModel {
            rules: CompiledRules::from_rules(rules),
            priors: CompiledPriors::from_entries(priors, step_prefix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetKey;

    fn rules_fixture() -> FeatureRules {
        let mut rules: HashMap<CondKey, Vec<(Port, f64)>> = HashMap::new();
        rules.insert(
            CondKey::Port(Port(80)),
            vec![(Port(443), 0.8), (Port(22), 0.3), (Port(21), 0.1)],
        );
        // Identical list under a different key: must share storage.
        rules.insert(
            CondKey::Port(Port(8080)),
            vec![(Port(443), 0.8), (Port(22), 0.3), (Port(21), 0.1)],
        );
        // A strict prefix of the list above: must point into its slice.
        rules.insert(
            CondKey::PortNet(Port(80), NetKey::Asn(7)),
            vec![(Port(443), 0.8), (Port(22), 0.3)],
        );
        rules.insert(CondKey::Port(Port(22)), vec![(Port(2222), 0.5)]);
        FeatureRules::from_parts(rules)
    }

    #[test]
    fn compiled_rules_match_hashmap_lookups() {
        let rules = rules_fixture();
        let compiled = CompiledRules::from_rules(&rules);
        assert_eq!(compiled.len(), rules.len());
        assert_eq!(compiled.num_keys(), rules.num_keys());
        for (key, targets) in rules.iter() {
            let got: Vec<(Port, f64)> = compiled.get(key).expect("key compiled").collect();
            assert_eq!(&got, targets, "targets for {key:?}");
        }
        assert!(compiled.get(&CondKey::Port(Port(9))).is_none());
        assert!(compiled
            .row(&CondKey::PortNet(Port(80), NetKey::Asn(8)))
            .is_none());
    }

    #[test]
    fn identical_and_prefix_lists_share_arena_storage() {
        let compiled = CompiledRules::from_rules(&rules_fixture());
        // 4 rows, 7 rule entries total — but only one 3-entry list plus
        // the 1-entry list are stored (the duplicate and the prefix both
        // alias the 3-entry slice).
        assert_eq!(compiled.len(), 9);
        assert_eq!(compiled.arena_len(), 4);
        let dup_a = compiled.row(&CondKey::Port(Port(80))).unwrap();
        let dup_b = compiled.row(&CondKey::Port(Port(8080))).unwrap();
        assert_eq!(compiled.row_slices(dup_a), compiled.row_slices(dup_b));
        let prefix = compiled
            .row(&CondKey::PortNet(Port(80), NetKey::Asn(7)))
            .unwrap();
        let (long_ports, _) = compiled.row_slices(dup_a);
        let (short_ports, _) = compiled.row_slices(prefix);
        assert_eq!(short_ports, &long_ports[..2]);
    }

    #[test]
    fn compilation_is_deterministic() {
        // Build the same content through different insertion orders.
        let a = CompiledRules::from_rules(&rules_fixture());
        let mut reversed: Vec<(CondKey, Vec<(Port, f64)>)> = rules_fixture()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        reversed.reverse();
        let b =
            CompiledRules::from_rules(&FeatureRules::from_parts(reversed.into_iter().collect()));
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_rejects_structural_corruption() {
        let compiled = CompiledRules::from_rules(&rules_fixture());
        let (keys, offsets, lens, ports, bits) = compiled.parts();
        // Slice past the arena end.
        let mut bad = offsets.to_vec();
        bad[0] = ports.len() as u32;
        assert!(CompiledRules::from_parts(
            keys.to_vec(),
            bad,
            lens.to_vec(),
            ports.to_vec(),
            bits.to_vec()
        )
        .is_err());
        // Unsorted keys.
        let mut bad_keys = keys.to_vec();
        bad_keys.reverse();
        assert!(CompiledRules::from_parts(
            bad_keys,
            offsets.to_vec(),
            lens.to_vec(),
            ports.to_vec(),
            bits.to_vec()
        )
        .is_err());
        // Table length mismatch.
        assert!(CompiledRules::from_parts(
            keys.to_vec(),
            offsets[..1].to_vec(),
            lens.to_vec(),
            ports.to_vec(),
            bits.to_vec()
        )
        .is_err());
    }

    fn priors_fixture() -> Vec<PriorsEntry> {
        vec![
            PriorsEntry {
                port: Port(80),
                subnet: Subnet::of_ip(Ip::from_octets(10, 1, 0, 0), 16),
                coverage: 30,
            },
            PriorsEntry {
                port: Port(22),
                subnet: Subnet::of_ip(Ip::from_octets(10, 1, 0, 0), 16),
                coverage: 10,
            },
            PriorsEntry {
                port: Port(443),
                subnet: Subnet::of_ip(Ip::from_octets(10, 2, 0, 0), 16),
                coverage: 5,
            },
            // A non-step-prefix entry: feeds the global ranking but is
            // unreachable by cold lookups (exactly like the HashMap path).
            PriorsEntry {
                port: Port(8443),
                subnet: Subnet::of_ip(Ip::from_octets(10, 3, 0, 0), 24),
                coverage: 50,
            },
        ]
    }

    #[test]
    fn cold_lookup_finds_subnet_or_global() {
        let priors = CompiledPriors::from_entries(&priors_fixture(), 16);
        assert_eq!(priors.num_subnets(), 2);
        let (ports, bits) = priors.cold(Ip::from_octets(10, 1, 9, 9));
        assert_eq!(ports, &[80, 22]);
        assert!((f64::from_bits(bits[0]) - 0.75).abs() < 1e-12);
        // Unknown subnet → global; /24 entry is global-only.
        let (global_ports, _) = priors.cold(Ip::from_octets(99, 0, 0, 1));
        assert_eq!(global_ports, priors.global().0);
        assert!(global_ports.contains(&8443));
        let (miss_ports, _) = priors.cold(Ip::from_octets(10, 3, 0, 1));
        assert_eq!(miss_ports, priors.global().0, "/24 subnet not indexed");
    }

    #[test]
    fn priors_from_parts_rejects_structural_corruption() {
        let priors = CompiledPriors::from_entries(&priors_fixture(), 16);
        let (step, bases, offsets, ports, bits, global_len) = priors.parts();
        // Unsorted index.
        let mut bad = bases.to_vec();
        bad.reverse();
        assert!(CompiledPriors::from_parts(
            step,
            bad,
            offsets.to_vec(),
            ports.to_vec(),
            bits.to_vec(),
            global_len
        )
        .is_err());
        // Global slice disagreeing with arena length.
        assert!(CompiledPriors::from_parts(
            step,
            bases.to_vec(),
            offsets.to_vec(),
            ports.to_vec(),
            bits.to_vec(),
            global_len + 1
        )
        .is_err());
        // Bad prefix.
        assert!(CompiledPriors::from_parts(
            40,
            bases.to_vec(),
            offsets.to_vec(),
            ports.to_vec(),
            bits.to_vec(),
            global_len
        )
        .is_err());
    }
}
