//! Predicting the first service (§5.3): the priors scan list.
//!
//! Only network features exist for hosts GPS has never seen, so the first
//! service on each host must be found by exhaustively scanning (port,
//! subnet) tuples chosen from the seed set:
//!
//! 1. hosts responding on a single seed port contribute
//!    `(that port, step-subnet(ip))`;
//! 2. for multi-service hosts, each service (IP, Portₐ) contributes the
//!    tuple of its *most predictive sibling* — the Port_b whose best key
//!    maximizes P(Portₐ | …) over all four equation classes;
//! 3. tuples are grouped and scored by how many unique seed services they
//!    help predict (maximal coverage);
//! 4. the list is sorted by coverage, descending.
//!
//! Scanning the list in order finds the most predictive service on each
//! host first, which the prediction phase (§5.4) then expands.

use std::collections::HashMap;

use gps_types::{Port, Subnet};

use crate::host::HostRecord;
use crate::model::CondModel;

/// One entry of the priors scan list: scan `subnet` exhaustively on `port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorsEntry {
    pub port: Port,
    pub subnet: Subnet,
    /// Number of unique seed services this tuple helps predict.
    pub coverage: u64,
}

/// Build the priors scan list from the seed hosts and the trained model.
pub fn build_priors_list(
    model: &CondModel,
    seed_hosts: &[HostRecord],
    step_prefix: u8,
) -> Vec<PriorsEntry> {
    let mut coverage: HashMap<(Port, Subnet), u64> = HashMap::new();

    for host in seed_hosts {
        let step_subnet = Subnet::of_ip(host.ip, step_prefix);
        if host.services.len() == 1 {
            // Step 1: the sole service is the first (and only) service that
            // must be found.
            *coverage
                .entry((host.services[0].port, step_subnet))
                .or_default() += 1;
            continue;
        }
        // Step 2: for every service, the most predictive sibling's port.
        for a in &host.services {
            match model.best_predictor_for(host, a.port) {
                Some((idx, _key, _p)) => {
                    let port_b = host.services[idx].port;
                    *coverage.entry((port_b, step_subnet)).or_default() += 1;
                }
                None => {
                    // No sibling predicts it (unseen pattern): fall back to
                    // finding the service directly.
                    *coverage.entry((a.port, step_subnet)).or_default() += 1;
                }
            }
        }
    }

    let mut list: Vec<PriorsEntry> = coverage
        .into_iter()
        .map(|((port, subnet), coverage)| PriorsEntry {
            port,
            subnet,
            coverage,
        })
        .collect();
    // Step 4: descending coverage; deterministic tiebreak.
    list.sort_by(|a, b| {
        b.coverage
            .cmp(&a.coverage)
            .then(a.port.cmp(&b.port))
            .then(a.subnet.cmp(&b.subnet))
    });
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Interactions, NetFeature};
    use crate::host::group_by_host;
    use crate::model::CondModel;
    use gps_engine::{Backend, ExecLedger};
    use gps_scan::ServiceObservation;
    use gps_types::{Ip, Protocol, Sym};

    fn obs(ip: u32, port: u16) -> ServiceObservation {
        ServiceObservation {
            ip: Ip(ip),
            port: Port(port),
            ttl: 60,
            protocol: Protocol::Http,
            content: Sym(0),
            features: vec![],
        }
    }

    fn hosts_and_model(observations: Vec<ServiceObservation>) -> (Vec<HostRecord>, CondModel) {
        let hosts = group_by_host(&observations, &[NetFeature::Slash(16)], &|_| None);
        let (model, _) = CondModel::build(
            &hosts,
            Interactions::ALL,
            Backend::SingleCore,
            &ExecLedger::new(),
        );
        (hosts, model)
    }

    #[test]
    fn single_service_hosts_map_to_their_own_port() {
        let (hosts, model) = hosts_and_model(vec![obs(0x0A000001, 8080)]);
        let list = build_priors_list(&model, &hosts, 16);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].port, Port(8080));
        assert_eq!(list[0].subnet, Subnet::of_ip(Ip(0x0A000001), 16));
        assert_eq!(list[0].coverage, 1);
    }

    #[test]
    fn asymmetric_predictiveness_selects_rare_port() {
        // 10 hosts with port 80; two of them also run 2222.
        // P(80 | 2222) = 1.0 but P(2222 | 80) = 0.2, so for the two dual
        // hosts the most predictive first-service is 2222.
        let mut observations = Vec::new();
        for ip in 1..=10u32 {
            observations.push(obs(ip, 80));
        }
        observations.push(obs(1, 2222));
        observations.push(obs(2, 2222));
        let (hosts, model) = hosts_and_model(observations);
        let list = build_priors_list(&model, &hosts, 16);
        // All IPs share one /16 ⇒ tuples keyed by port only here.
        let port2222 = list
            .iter()
            .find(|e| e.port == Port(2222))
            .expect("2222 chosen");
        // 2222 helps predict both (ip1, 80) and (ip2, 80), and is itself the
        // best-predicted service for nobody... coverage ≥ 2.
        assert!(port2222.coverage >= 2, "coverage {}", port2222.coverage);
        // Eight single-service hosts keep (80, net).
        let port80 = list
            .iter()
            .find(|e| e.port == Port(80))
            .expect("80 present");
        assert!(port80.coverage >= 8);
    }

    #[test]
    fn list_is_sorted_by_coverage() {
        let mut observations = Vec::new();
        for ip in 1..=5u32 {
            observations.push(obs(ip, 80));
        }
        observations.push(obs(0x0B000001, 9999));
        let (hosts, model) = hosts_and_model(observations);
        let list = build_priors_list(&model, &hosts, 16);
        assert!(list.windows(2).all(|w| w[0].coverage >= w[1].coverage));
    }

    #[test]
    fn step_prefix_controls_subnet_granularity() {
        let (hosts, model) = hosts_and_model(vec![obs(0x0A00FF01, 80)]);
        for step in [0u8, 8, 16, 24] {
            let list = build_priors_list(&model, &hosts, step);
            assert_eq!(list[0].subnet.prefix_len(), step);
            assert!(list[0].subnet.contains(Ip(0x0A00FF01)));
        }
    }

    #[test]
    fn distinct_subnets_make_distinct_tuples() {
        // Same port, two /16s → two tuples.
        let (hosts, model) = hosts_and_model(vec![obs(0x0A000001, 80), obs(0x0B000001, 80)]);
        let list = build_priors_list(&model, &hosts, 16);
        assert_eq!(list.len(), 2);
        assert!(list.iter().all(|e| e.port == Port(80)));
    }

    #[test]
    fn deterministic_order() {
        let observations: Vec<_> = (1..=20u32)
            .flat_map(|ip| vec![obs(ip, 80), obs(ip, 443)])
            .collect();
        let (hosts, model) = hosts_and_model(observations.clone());
        let a = build_priors_list(&model, &hosts, 20);
        let (hosts2, model2) = hosts_and_model(observations);
        let b = build_priors_list(&model2, &hosts2, 20);
        assert_eq!(a, b);
    }
}
