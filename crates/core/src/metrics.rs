//! Coverage metrics (§3, Equations 1–2) and discovery curves.
//!
//! - **Fraction of services** (Eq. 1): found ÷ ground truth, over all
//!   (IP, port) pairs — biased toward popular ports.
//! - **Normalized services** (Eq. 2): per-port recall averaged over ports,
//!   so finding all of an uncommon port's three services counts as much as
//!   finding all of port 80.
//! - **Precision**: newly-found real services ÷ discovery probes (Figure 3).
//! - **Bandwidth**: probes ÷ universe size, the "number of 100% scans" unit.
//!
//! [`CoverageTracker`] maintains all of these incrementally so the pipeline
//! can checkpoint a [`DiscoveryCurve`] for every figure without rescanning.

use std::collections::{HashMap, HashSet};

use gps_types::{Port, ServiceKey};

/// An immutable set of ground-truth services with per-port counts.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    services: HashSet<ServiceKey>,
    per_port: HashMap<u16, u64>,
    total: u64,
}

impl GroundTruth {
    pub fn from_services(services: Vec<ServiceKey>) -> Self {
        let mut per_port: HashMap<u16, u64> = HashMap::new();
        let set: HashSet<ServiceKey> = services.into_iter().collect();
        for key in &set {
            *per_port.entry(key.port.0).or_default() += 1;
        }
        let total = set.len() as u64;
        GroundTruth {
            services: set,
            per_port,
            total,
        }
    }

    pub fn contains(&self, key: &ServiceKey) -> bool {
        self.services.contains(key)
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn num_ports(&self) -> usize {
        self.per_port.len()
    }

    pub fn per_port(&self) -> &HashMap<u16, u64> {
        &self.per_port
    }

    pub fn port_count(&self, port: Port) -> u64 {
        self.per_port.get(&port.0).copied().unwrap_or(0)
    }

    pub fn services(&self) -> &HashSet<ServiceKey> {
        &self.services
    }
}

/// Incremental coverage bookkeeping against one ground truth.
#[derive(Debug)]
pub struct CoverageTracker<'a> {
    ground: &'a GroundTruth,
    found: HashSet<ServiceKey>,
    found_per_port: HashMap<u16, u64>,
    /// Running Σ_p found_p / truth_p (numerator of Eq. 2).
    normalized_sum: f64,
    /// Probes spent in discovery phases (excludes the sunk seed scan).
    discovery_probes: u64,
}

impl<'a> CoverageTracker<'a> {
    pub fn new(ground: &'a GroundTruth) -> Self {
        CoverageTracker {
            ground,
            found: HashSet::new(),
            found_per_port: HashMap::new(),
            normalized_sum: 0.0,
            discovery_probes: 0,
        }
    }

    /// Record a discovered service. Returns true if it is a *new* test-set
    /// service (a "hit").
    pub fn record(&mut self, key: ServiceKey) -> bool {
        if !self.ground.contains(&key) || !self.found.insert(key) {
            return false;
        }
        *self.found_per_port.entry(key.port.0).or_default() += 1;
        let truth = self.ground.port_count(key.port) as f64;
        self.normalized_sum += 1.0 / truth;
        true
    }

    pub fn charge_probes(&mut self, probes: u64) {
        self.discovery_probes += probes;
    }

    /// Eq. 1.
    pub fn fraction_of_services(&self) -> f64 {
        if self.ground.total() == 0 {
            return 0.0;
        }
        self.found.len() as f64 / self.ground.total() as f64
    }

    /// Eq. 2.
    pub fn normalized_fraction(&self) -> f64 {
        let ports = self.ground.num_ports();
        if ports == 0 {
            return 0.0;
        }
        self.normalized_sum / ports as f64
    }

    /// Found ÷ discovery probes.
    pub fn precision(&self) -> f64 {
        if self.discovery_probes == 0 {
            return 0.0;
        }
        self.found.len() as f64 / self.discovery_probes as f64
    }

    pub fn found_count(&self) -> u64 {
        self.found.len() as u64
    }

    pub fn discovery_probes(&self) -> u64 {
        self.discovery_probes
    }

    pub fn found(&self) -> &HashSet<ServiceKey> {
        &self.found
    }

    /// Snapshot a curve point at the given cumulative bandwidth.
    pub fn snapshot(&self, scans: f64) -> CurvePoint {
        CurvePoint {
            scans,
            discovery_probes: self.discovery_probes,
            found: self.found.len() as u64,
            fraction_all: self.fraction_of_services(),
            fraction_normalized: self.normalized_fraction(),
            precision: self.precision(),
        }
    }
}

/// One point of a discovery curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Cumulative bandwidth in 100%-scan units (seed included).
    pub scans: f64,
    /// Cumulative probes spent on discovery (seed excluded).
    pub discovery_probes: u64,
    /// Services found so far.
    pub found: u64,
    /// Eq. 1 at this point.
    pub fraction_all: f64,
    /// Eq. 2 at this point.
    pub fraction_normalized: f64,
    /// Precision at this point.
    pub precision: f64,
}

/// A bandwidth-ordered sequence of curve points.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryCurve {
    pub points: Vec<CurvePoint>,
}

impl DiscoveryCurve {
    pub fn push(&mut self, point: CurvePoint) {
        self.points.push(point);
    }

    /// Smallest bandwidth at which `fraction_all ≥ target`, if reached.
    pub fn scans_to_reach_all(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.fraction_all >= target)
            .map(|p| p.scans)
    }

    /// Smallest bandwidth at which `fraction_normalized ≥ target`.
    pub fn scans_to_reach_normalized(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.fraction_normalized >= target)
            .map(|p| p.scans)
    }

    /// Final point (panics on an empty curve).
    pub fn last(&self) -> &CurvePoint {
        self.points.last().expect("empty curve")
    }

    /// Linear interpolation of fraction_all at a bandwidth.
    pub fn all_at_scans(&self, scans: f64) -> f64 {
        interpolate(&self.points, scans, |p| p.fraction_all)
    }

    /// Linear interpolation of fraction_normalized at a bandwidth.
    pub fn normalized_at_scans(&self, scans: f64) -> f64 {
        interpolate(&self.points, scans, |p| p.fraction_normalized)
    }

    /// Write the curve as CSV (header + one row per point) for external
    /// plotting of the reproduced figures.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "scans,discovery_probes,found,fraction_all,fraction_normalized,precision"
        )?;
        for p in &self.points {
            writeln!(
                w,
                "{:.6},{},{},{:.6},{:.6},{:.8}",
                p.scans,
                p.discovery_probes,
                p.found,
                p.fraction_all,
                p.fraction_normalized,
                p.precision
            )?;
        }
        Ok(())
    }
}

fn interpolate(points: &[CurvePoint], x: f64, get: impl Fn(&CurvePoint) -> f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    if x <= points[0].scans {
        return 0.0;
    }
    for w in points.windows(2) {
        if x <= w[1].scans {
            let (x0, x1) = (w[0].scans, w[1].scans);
            let (y0, y1) = (get(&w[0]), get(&w[1]));
            if x1 <= x0 {
                return y1;
            }
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
    }
    get(points.last().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_types::Ip;

    fn key(ip: u32, port: u16) -> ServiceKey {
        ServiceKey::new(Ip(ip), Port(port))
    }

    fn ground() -> GroundTruth {
        // Port 80: 4 services; port 9999: 1 service.
        GroundTruth::from_services(vec![
            key(1, 80),
            key(2, 80),
            key(3, 80),
            key(4, 80),
            key(9, 9999),
        ])
    }

    #[test]
    fn ground_truth_counts() {
        let g = ground();
        assert_eq!(g.total(), 5);
        assert_eq!(g.num_ports(), 2);
        assert_eq!(g.port_count(Port(80)), 4);
        assert_eq!(g.port_count(Port(1)), 0);
    }

    #[test]
    fn normalization_weighs_ports_equally() {
        let g = ground();
        let mut t = CoverageTracker::new(&g);
        // Finding the single uncommon service = 50% normalized, 20% of all.
        assert!(t.record(key(9, 9999)));
        assert!((t.normalized_fraction() - 0.5).abs() < 1e-12);
        assert!((t.fraction_of_services() - 0.2).abs() < 1e-12);
        // Finding all of port 80 brings normalized to 1.0.
        for ip in 1..=4 {
            t.record(key(ip, 80));
        }
        assert!((t.normalized_fraction() - 1.0).abs() < 1e-12);
        assert!((t.fraction_of_services() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_ground_and_duplicate_records_are_not_hits() {
        let g = ground();
        let mut t = CoverageTracker::new(&g);
        assert!(!t.record(key(100, 80)), "not in ground truth");
        assert!(t.record(key(1, 80)));
        assert!(!t.record(key(1, 80)), "duplicate");
        assert_eq!(t.found_count(), 1);
    }

    #[test]
    fn precision_counts_discovery_probes_only() {
        let g = ground();
        let mut t = CoverageTracker::new(&g);
        t.charge_probes(10);
        t.record(key(1, 80));
        assert!((t.precision() - 0.1).abs() < 1e-12);
        t.charge_probes(10);
        assert!((t.precision() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn curve_queries() {
        let g = ground();
        let mut t = CoverageTracker::new(&g);
        let mut curve = DiscoveryCurve::default();
        curve.push(t.snapshot(1.0));
        t.charge_probes(100);
        t.record(key(1, 80));
        t.record(key(2, 80));
        curve.push(t.snapshot(2.0));
        for ip in 3..=4 {
            t.record(key(ip, 80));
        }
        t.record(key(9, 9999));
        curve.push(t.snapshot(5.0));

        assert_eq!(curve.scans_to_reach_all(0.4), Some(2.0));
        assert_eq!(curve.scans_to_reach_all(1.0), Some(5.0));
        assert_eq!(curve.scans_to_reach_all(1.1), None);
        assert!(
            (curve.all_at_scans(3.5) - 0.7).abs() < 1e-9,
            "interpolated midpoint"
        );
        assert_eq!(curve.all_at_scans(0.5), 0.0, "before first point");
        assert!(
            (curve.all_at_scans(99.0) - 1.0).abs() < 1e-12,
            "past the end"
        );
    }

    #[test]
    fn csv_round_trip_shape() {
        let g = ground();
        let mut t = CoverageTracker::new(&g);
        let mut curve = DiscoveryCurve::default();
        t.charge_probes(10);
        t.record(key(1, 80));
        curve.push(t.snapshot(1.5));
        let mut buf = Vec::new();
        curve.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("scans,"));
        assert!(lines[1].starts_with("1.5"));
        assert_eq!(lines[1].split(',').count(), 6);
    }

    #[test]
    fn empty_ground_truth_is_safe() {
        let g = GroundTruth::from_services(vec![]);
        let mut t = CoverageTracker::new(&g);
        assert!(!t.record(key(1, 80)));
        assert_eq!(t.fraction_of_services(), 0.0);
        assert_eq!(t.normalized_fraction(), 0.0);
        assert_eq!(t.precision(), 0.0);
    }
}
