//! The conditional-probability model (§5.2, Equations 4–7).
//!
//! For every conditioning tuple K observed in the seed set, the model stores
//!
//! - `hosts(K)` — how many seed hosts exhibit K, and
//! - `cooccur(K, Portₐ)` — how many of those also respond on Portₐ,
//!
//! so that `P(Portₐ | K) = cooccur(K, Portₐ) / hosts(K)`. This *is* the
//! paper's "pairwise co-occurrence matrix for every feature and port"
//! (§5.5): enumerating ordered service pairs within each host is the
//! self-join, and the two grouped counts are the aggregation. The build is
//! embarrassingly parallel across hosts, which is GPS's key systems claim —
//! both backends (single-core and parallel) produce identical models.

use std::collections::HashMap;
use std::time::Duration;

use gps_engine::{par_fold_reduce, Backend, ExecLedger};
use gps_types::{FeatureValue, Port};

use crate::config::Interactions;
use crate::host::{service_keys, HostRecord};

/// A network-layer conditioning value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetKey {
    /// (prefix length, subnet base address)
    Slash(u8, u32),
    /// ASN number
    Asn(u32),
}

impl std::fmt::Display for NetKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetKey::Slash(len, base) => write!(f, "{}/{len}", gps_types::Ip(*base)),
            NetKey::Asn(n) => write!(f, "AS{n}"),
        }
    }
}

/// A conditioning tuple: always anchored on an observed port (`Port_b`),
/// optionally refined by an application feature value and/or a network key.
/// The `Ord` impl gives snapshots a canonical key order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CondKey {
    /// Eq. 4
    Port(Port),
    /// Eq. 5
    PortApp(Port, FeatureValue),
    /// Eq. 6
    PortNet(Port, NetKey),
    /// Eq. 7
    PortAppNet(Port, FeatureValue, NetKey),
}

impl CondKey {
    /// The anchor port (`Port_b`).
    pub fn port(&self) -> Port {
        match self {
            CondKey::Port(p)
            | CondKey::PortApp(p, _)
            | CondKey::PortNet(p, _)
            | CondKey::PortAppNet(p, _, _) => *p,
        }
    }

    /// The application feature, if the key has one.
    pub fn app(&self) -> Option<FeatureValue> {
        match self {
            CondKey::PortApp(_, f) | CondKey::PortAppNet(_, f, _) => Some(*f),
            _ => None,
        }
    }

    /// The network key, if the key has one.
    pub fn net(&self) -> Option<NetKey> {
        match self {
            CondKey::PortNet(_, n) | CondKey::PortAppNet(_, _, n) => Some(*n),
            _ => None,
        }
    }

    /// Which equation class the key belongs to (4, 5, 6 or 7).
    pub fn class(&self) -> u8 {
        match self {
            CondKey::Port(_) => 4,
            CondKey::PortApp(_, _) => 5,
            CondKey::PortNet(_, _) => 6,
            CondKey::PortAppNet(_, _, _) => 7,
        }
    }
}

/// Counts for one conditioning tuple.
#[derive(Debug, Clone, Default)]
pub struct KeyStats {
    /// Number of seed hosts exhibiting the tuple.
    pub hosts: u32,
    /// Co-occurrence counts: (target port, hosts with both), sorted by count
    /// descending then port ascending.
    pub targets: Vec<(Port, u32)>,
}

impl KeyStats {
    /// P(target | key).
    pub fn probability(&self, target: Port) -> f64 {
        if self.hosts == 0 {
            return 0.0;
        }
        self.targets
            .iter()
            .find(|&&(p, _)| p == target)
            .map(|&(_, c)| c as f64 / self.hosts as f64)
            .unwrap_or(0.0)
    }
}

/// Build statistics (Table 2's compute columns).
#[derive(Debug, Clone)]
pub struct BuildStats {
    pub hosts_in: usize,
    pub multi_service_hosts: usize,
    pub distinct_keys: usize,
    pub cooccur_entries: u64,
    pub elapsed: Duration,
    pub backend_workers: usize,
}

/// The trained model.
#[derive(Debug, Clone)]
pub struct CondModel {
    keys: HashMap<CondKey, KeyStats>,
    interactions: Interactions,
}

impl CondModel {
    /// Reassemble a model from its stored parts (snapshot deserialization).
    pub fn from_parts(keys: HashMap<CondKey, KeyStats>, interactions: Interactions) -> CondModel {
        CondModel { keys, interactions }
    }

    /// Compute the co-occurrence model over host-grouped seed records.
    pub fn build(
        hosts: &[HostRecord],
        interactions: Interactions,
        backend: Backend,
        ledger: &ExecLedger,
    ) -> (CondModel, BuildStats) {
        let start = std::time::Instant::now();

        #[derive(Default)]
        struct Acc {
            // key → (host count, target port → co-occurrence count)
            map: HashMap<CondKey, (u32, HashMap<Port, u32>)>,
        }

        // Charge the ledger with the self-join volume: Σ_h k·(k−1) pairs.
        let pair_volume: u64 = hosts
            .iter()
            .map(|h| {
                let k = h.services.len() as u64;
                k * k.saturating_sub(1)
            })
            .sum();
        ledger.record_rows(pair_volume, 24);

        let acc = par_fold_reduce(
            hosts,
            backend.workers(),
            Acc::default,
            |acc, host| {
                for b in &host.services {
                    service_keys(b, &host.nets, interactions, &mut |key| {
                        let entry = acc.map.entry(key).or_default();
                        entry.0 += 1;
                        for a in &host.services {
                            if a.port != b.port {
                                *entry.1.entry(a.port).or_default() += 1;
                            }
                        }
                    });
                }
            },
            |mut a, b| {
                for (key, (hosts_b, targets_b)) in b.map {
                    let entry = a.map.entry(key).or_default();
                    entry.0 += hosts_b;
                    for (port, c) in targets_b {
                        *entry.1.entry(port).or_default() += c;
                    }
                }
                a
            },
        );

        let mut cooccur_entries = 0u64;
        let keys: HashMap<CondKey, KeyStats> = acc
            .map
            .into_iter()
            .map(|(key, (host_count, targets))| {
                cooccur_entries += targets.len() as u64;
                let mut targets: Vec<(Port, u32)> = targets.into_iter().collect();
                targets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                (
                    key,
                    KeyStats {
                        hosts: host_count,
                        targets,
                    },
                )
            })
            .collect();

        let stats = BuildStats {
            hosts_in: hosts.len(),
            multi_service_hosts: hosts.iter().filter(|h| h.services.len() > 1).count(),
            distinct_keys: keys.len(),
            cooccur_entries,
            elapsed: start.elapsed(),
            backend_workers: backend.workers(),
        };
        (CondModel { keys, interactions }, stats)
    }

    /// Stats for a key, if observed in the seed.
    pub fn stats(&self, key: &CondKey) -> Option<&KeyStats> {
        self.keys.get(key)
    }

    /// `P(target | key)`; 0.0 for unseen keys.
    pub fn probability(&self, key: &CondKey, target: Port) -> f64 {
        self.keys
            .get(key)
            .map(|s| s.probability(target))
            .unwrap_or(0.0)
    }

    /// Iterate all keys (deterministic order NOT guaranteed).
    pub fn iter(&self) -> impl Iterator<Item = (&CondKey, &KeyStats)> {
        self.keys.iter()
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn interactions(&self) -> Interactions {
        self.interactions
    }

    /// Over all keys derivable from the services of `host`, the maximum
    /// P(target | key) and the service (by index) + key achieving it.
    ///
    /// This is step 2 of the §5.3 priors algorithm: for every (IP, Portₐ),
    /// find the Port_b (with its best feature refinement) most predictive
    /// of Portₐ.
    pub fn best_predictor_for(
        &self,
        host: &HostRecord,
        target: Port,
    ) -> Option<(usize, CondKey, f64)> {
        let mut best: Option<(usize, CondKey, f64)> = None;
        for (idx, b) in host.services.iter().enumerate() {
            if b.port == target {
                continue;
            }
            service_keys(b, &host.nets, self.interactions, &mut |key| {
                let p = self.probability(&key, target);
                if p > 0.0 {
                    // Ties break toward the simpler equation class: generic
                    // tuples have larger support (hosts(Port) ⊇
                    // hosts(Port, App)), so at equal estimated probability
                    // the simpler key is the statistically safer rule and
                    // matches more future hosts. This also reproduces
                    // Table 3's ranking, where (Port, Protocol) and bare
                    // Port dominate the most-predictive-feature census.
                    let better = match &best {
                        None => true,
                        Some((_, bk, bp)) => p > *bp || (p == *bp && key.class() < bk.class()),
                    };
                    if better {
                        best = Some((idx, key, p));
                    }
                }
            });
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetFeature;
    use crate::host::group_by_host;
    use gps_scan::ServiceObservation;
    use gps_types::{FeatureKind, Ip, Protocol, Sym};

    fn obs(ip: u32, port: u16, feature: Option<u32>) -> ServiceObservation {
        ServiceObservation {
            ip: Ip(ip),
            port: Port(port),
            ttl: 60,
            protocol: Protocol::Http,
            content: Sym(0),
            features: feature
                .map(|v| vec![FeatureValue::new(FeatureKind::HttpServer, Sym(v))])
                .unwrap_or_default(),
        }
    }

    /// Three hosts: two run {80, 443}, one runs {80} alone.
    fn simple_hosts() -> Vec<HostRecord> {
        let observations = vec![
            obs(1, 80, Some(7)),
            obs(1, 443, None),
            obs(2, 80, Some(7)),
            obs(2, 443, None),
            obs(3, 80, Some(8)),
        ];
        group_by_host(&observations, &[NetFeature::Slash(16)], &|_| None)
    }

    fn build(hosts: &[HostRecord]) -> CondModel {
        CondModel::build(
            hosts,
            Interactions::ALL,
            Backend::SingleCore,
            &ExecLedger::new(),
        )
        .0
    }

    #[test]
    fn eq4_probabilities() {
        let model = build(&simple_hosts());
        // P(443 | 80) = 2 hosts with both / 3 hosts with 80.
        let p = model.probability(&CondKey::Port(Port(80)), Port(443));
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        // P(80 | 443) = 2/2.
        let p = model.probability(&CondKey::Port(Port(443)), Port(80));
        assert!((p - 1.0).abs() < 1e-12);
        // Unseen target.
        assert_eq!(model.probability(&CondKey::Port(Port(80)), Port(22)), 0.0);
        // Unseen key.
        assert_eq!(model.probability(&CondKey::Port(Port(9999)), Port(80)), 0.0);
    }

    #[test]
    fn eq5_feature_refinement_beats_eq4() {
        let model = build(&simple_hosts());
        // Feature 7 on port 80 occurs on hosts 1,2 which both run 443:
        // P(443 | 80, f=7) = 1.0 > P(443 | 80) = 2/3.
        let f = FeatureValue::new(FeatureKind::HttpServer, Sym(7));
        let p = model.probability(&CondKey::PortApp(Port(80), f), Port(443));
        assert!((p - 1.0).abs() < 1e-12);
        // Feature 8 host runs nothing else.
        let f8 = FeatureValue::new(FeatureKind::HttpServer, Sym(8));
        assert_eq!(
            model.probability(&CondKey::PortApp(Port(80), f8), Port(443)),
            0.0
        );
    }

    #[test]
    fn eq6_network_keys_counted() {
        let model = build(&simple_hosts());
        // All three IPs share /16 0.0.0.0/16.
        let key = CondKey::PortNet(Port(80), NetKey::Slash(16, 0));
        let stats = model.stats(&key).expect("net key present");
        assert_eq!(stats.hosts, 3);
        assert!((stats.probability(Port(443)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn backends_agree() {
        let hosts = simple_hosts();
        let ledger = ExecLedger::new();
        let (single, _) = CondModel::build(&hosts, Interactions::ALL, Backend::SingleCore, &ledger);
        let (par, _) = CondModel::build(
            &hosts,
            Interactions::ALL,
            Backend::Parallel { workers: 4 },
            &ledger,
        );
        assert_eq!(single.len(), par.len());
        for (key, stats) in single.iter() {
            let other = par.stats(key).expect("key in both");
            assert_eq!(stats.hosts, other.hosts);
            assert_eq!(stats.targets, other.targets);
        }
    }

    #[test]
    fn denominator_consistency_invariant() {
        // For every key: every target count ≤ host count (P ≤ 1).
        let model = build(&simple_hosts());
        for (_, stats) in model.iter() {
            for &(_, c) in &stats.targets {
                assert!(c <= stats.hosts);
            }
        }
    }

    #[test]
    fn single_service_hosts_contribute_denominators_only() {
        let observations = vec![obs(1, 80, None)];
        let hosts = group_by_host(&observations, &[], &|_| None);
        let model = build(&hosts);
        let stats = model.stats(&CondKey::Port(Port(80))).unwrap();
        assert_eq!(stats.hosts, 1);
        assert!(stats.targets.is_empty());
    }

    #[test]
    fn best_predictor_finds_strongest_key() {
        let hosts = simple_hosts();
        let model = build(&hosts);
        // On host 1, target 443: best predictor should be the (80, f=7)
        // refinement with probability 1.0.
        let host = &hosts[0];
        let (idx, key, p) = model.best_predictor_for(host, Port(443)).unwrap();
        assert_eq!(host.services[idx].port, Port(80));
        assert!((p - 1.0).abs() < 1e-12);
        assert!(p >= model.probability(&CondKey::Port(Port(80)), Port(443)));
        assert_eq!(key.port(), Port(80));
    }

    #[test]
    fn best_predictor_none_for_single_service_host() {
        let observations = vec![obs(9, 8080, None)];
        let hosts = group_by_host(&observations, &[], &|_| None);
        let model = build(&simple_hosts());
        assert!(model.best_predictor_for(&hosts[0], Port(8080)).is_none());
    }

    #[test]
    fn build_stats_are_plausible() {
        let hosts = simple_hosts();
        let ledger = ExecLedger::new();
        let (_, stats) = CondModel::build(&hosts, Interactions::ALL, Backend::SingleCore, &ledger);
        assert_eq!(stats.hosts_in, 3);
        assert_eq!(stats.multi_service_hosts, 2);
        assert!(stats.distinct_keys > 0);
        assert!(stats.cooccur_entries > 0);
        // Join volume: hosts 1,2 have k=2 → 2 pairs each; host 3 none.
        assert_eq!(ledger.rows_processed(), 4);
    }
}
