//! Pseudo-service filtering (Appendix B).
//!
//! Middleboxes serve "pseudo services" — HTTP-ish responses on >1000
//! contiguous ports — that would otherwise dominate 96% of all ports and
//! poison the model. The paper's pipeline:
//!
//! 1. strip expected dynamic fields from response data (dates, cookies, TLS
//!    randoms) — our scanner already observes post-stripping `content`
//!    symbols;
//! 2. drop services on a host that share identical filtered data with other
//!    services on the same host (catches >80% of pseudo services);
//! 3. the long tail is hard to fingerprint, so finally *drop any host
//!    serving more than 10 services* — the paper measures this rule at 100%
//!    recall and 99% precision.
//!
//! The `appB` experiment reproduces the recall/precision measurement against
//! synthetic ground truth.

use std::collections::HashMap;

use gps_scan::ServiceObservation;

/// Threshold from Appendix B: hosts serving more than this many services
/// are considered middleboxes.
pub const MAX_REAL_SERVICES_PER_HOST: usize = 10;

/// Outcome counters for a filtering pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    pub observations_in: usize,
    pub observations_out: usize,
    pub dropped_duplicate_content: usize,
    pub dropped_big_hosts: usize,
    /// Hosts removed by the >10-services rule.
    pub hosts_flagged: usize,
}

/// Apply the Appendix B filter to raw scan observations.
///
/// Observations must all come from the same scan (duplicates by (ip, port)
/// are allowed and deduplicated here too). Order is preserved for retained
/// observations.
pub fn filter_pseudo_services(
    observations: Vec<ServiceObservation>,
) -> (Vec<ServiceObservation>, FilterStats) {
    let mut stats = FilterStats {
        observations_in: observations.len(),
        ..Default::default()
    };

    // Pass 1: per-host content histogram + service count.
    #[derive(Default)]
    struct HostAgg {
        services: usize,
        content_counts: HashMap<gps_types::Sym, usize>,
    }
    let mut hosts: HashMap<u32, HostAgg> = HashMap::new();
    let mut seen = std::collections::HashSet::new();
    for obs in &observations {
        if !seen.insert((obs.ip.0, obs.port.0)) {
            continue;
        }
        let agg = hosts.entry(obs.ip.0).or_default();
        agg.services += 1;
        *agg.content_counts.entry(obs.content).or_default() += 1;
    }

    // Decide per-host drops.
    let flagged: std::collections::HashSet<u32> = hosts
        .iter()
        .filter(|(_, agg)| agg.services > MAX_REAL_SERVICES_PER_HOST)
        .map(|(&ip, _)| ip)
        .collect();
    stats.hosts_flagged = flagged.len();

    // Pass 2: retain.
    seen.clear();
    let mut out = Vec::with_capacity(observations.len());
    for obs in observations {
        if !seen.insert((obs.ip.0, obs.port.0)) {
            continue;
        }
        if flagged.contains(&obs.ip.0) {
            stats.dropped_big_hosts += 1;
            continue;
        }
        let agg = &hosts[&obs.ip.0];
        // Rule 2: identical filtered content repeated across the host's
        // services is the pseudo-service signature. A single repeated pair
        // on an otherwise small host is tolerated (virtual-hosting web
        // servers legitimately serve one body on 80 and 8080), mirroring
        // the paper's "same filtered data" rule applying to *pseudo* pages.
        let dupes = agg.content_counts[&obs.content];
        if dupes > 2 && agg.services > 2 {
            stats.dropped_duplicate_content += 1;
            continue;
        }
        out.push(obs);
    }
    stats.observations_out = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_types::{Ip, Port, Protocol, Sym};

    fn obs(ip: u32, port: u16, content: u32) -> ServiceObservation {
        ServiceObservation {
            ip: Ip(ip),
            port: Port(port),
            ttl: 60,
            protocol: Protocol::Http,
            content: Sym(content),
            features: vec![],
        }
    }

    #[test]
    fn keeps_normal_hosts() {
        let input = vec![obs(1, 80, 100), obs(1, 443, 101), obs(2, 22, 102)];
        let (out, stats) = filter_pseudo_services(input.clone());
        assert_eq!(out, input);
        assert_eq!(stats.hosts_flagged, 0);
    }

    #[test]
    fn drops_hosts_with_many_services() {
        let mut input: Vec<_> = (0..25u16)
            .map(|i| obs(9, 1000 + i, 500 + i as u32))
            .collect();
        input.push(obs(1, 80, 7));
        let (out, stats) = filter_pseudo_services(input);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ip, Ip(1));
        assert_eq!(stats.hosts_flagged, 1);
        assert_eq!(stats.dropped_big_hosts, 25);
    }

    #[test]
    fn drops_repeated_content_on_medium_hosts() {
        // 5 services, 4 sharing one content symbol → the 4 clones drop.
        let input = vec![
            obs(3, 80, 42),
            obs(3, 81, 42),
            obs(3, 82, 42),
            obs(3, 83, 42),
            obs(3, 22, 9),
        ];
        let (out, stats) = filter_pseudo_services(input);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, Port(22));
        assert_eq!(stats.dropped_duplicate_content, 4);
    }

    #[test]
    fn tolerates_shared_body_on_two_ports() {
        // Virtual host serving the same page on 80 + 8080 is legitimate.
        let input = vec![obs(4, 80, 50), obs(4, 8080, 50), obs(4, 22, 51)];
        let (out, _) = filter_pseudo_services(input.clone());
        assert_eq!(out, input);
    }

    #[test]
    fn deduplicates_repeated_observations() {
        let input = vec![obs(5, 80, 1), obs(5, 80, 1), obs(5, 80, 1)];
        let (out, stats) = filter_pseudo_services(input);
        assert_eq!(out.len(), 1);
        assert_eq!(stats.observations_in, 3);
        assert_eq!(stats.observations_out, 1);
    }

    #[test]
    fn empty_input() {
        let (out, stats) = filter_pseudo_services(vec![]);
        assert!(out.is_empty());
        assert_eq!(stats, FilterStats::default());
    }

    #[test]
    fn boundary_exactly_ten_services_kept() {
        let input: Vec<_> = (0..10u16)
            .map(|i| obs(6, 100 + i, 900 + i as u32))
            .collect();
        let (out, stats) = filter_pseudo_services(input);
        assert_eq!(out.len(), 10, "exactly 10 services is allowed");
        assert_eq!(stats.hosts_flagged, 0);
    }
}
