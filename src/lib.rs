//! # GPS — Predicting IPv4 Services Across All Ports
//!
//! A full-system Rust reproduction of *Predicting IPv4 Services Across All
//! Ports* (Izhikevich, Teixeira, Durumeric — SIGCOMM 2022): the GPS
//! predictive scanning framework, every substrate it depends on, and every
//! baseline it is evaluated against.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `gps-types` | IPs, subnets, ports, protocols, the 25 features of Table 1, deterministic RNG |
//! | [`engine`] | `gps-engine` | parallel group-by/self-join dataflow engine (the BigQuery stand-in) |
//! | [`synthnet`] | `gps-synthnet` | deterministic synthetic IPv4 Internet (the datasets stand-in) |
//! | [`scan`] | `gps-scan` | simulated ZMap + LZR + ZGrab chain with exact bandwidth accounting |
//! | [`core`] | `gps-core` | the paper's contribution: Eq. 4–7 model, priors scan, prediction scan |
//! | [`baselines`] | `gps-baselines` | exhaustive/oracle probers, GBDT + XGBoost-scanner, TGAs, recommender |
//!
//! ## Quick start
//!
//! ```
//! use gps::prelude::*;
//!
//! // A small deterministic universe (≈260K addresses).
//! let net = Internet::generate(&UniverseConfig::tiny(7));
//! // Censys-style workload: 100% visibility of the top 100 ports,
//! // 5% of addresses as the training seed.
//! let dataset = censys_dataset(&net, 100, 0.05, 0, 1);
//! let run = run_gps(&net, &dataset, &GpsConfig {
//!     seed_fraction: 0.05,
//!     step_prefix: 20,
//!     ..GpsConfig::default()
//! });
//! println!(
//!     "GPS found {:.1}% of services using {:.1} 100%-scan units",
//!     100.0 * run.fraction_of_services(),
//!     run.total_scans(),
//! );
//! assert!(run.fraction_of_services() > 0.3);
//! ```

pub use gps_baselines as baselines;
pub use gps_core as core;
pub use gps_engine as engine;
pub use gps_scan as scan;
pub use gps_serve as serve;
pub use gps_synthnet as synthnet;
pub use gps_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use gps_baselines::{
        optimal_port_order_curve, oracle_curve, random_probe_curve, run_xgb_scanner,
        XgbScannerConfig,
    };
    pub use gps_core::ModelSnapshot;
    pub use gps_core::{
        censys_dataset, lzr_dataset, run_gps, Dataset, DiscoveryCurve, GpsConfig, GpsRun,
        Interactions, MinProb, NetFeature,
    };
    pub use gps_engine::Backend;
    pub use gps_scan::{ScanConfig, ScanPhase, Scanner};
    pub use gps_serve::{PredictionServer, Query, ServableModel, ServeConfig};
    pub use gps_synthnet::{Internet, UniverseConfig};
    pub use gps_types::{Ip, Port, PortSet, ServiceKey, Subnet};
}
